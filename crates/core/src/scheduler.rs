//! Public entry points of the iterative scheduler (paper Algorithm 1).
//!
//! The implementation lives in the staged [`crate::pipeline`] module
//! tree (legality → objectives → solve → postprocess); this module keeps
//! the stable API surface:
//!
//! * [`schedule`] — JSON-driven scheduling under a static
//!   [`SchedulerConfig`];
//! * [`schedule_with_strategy`] — dynamic [`Strategy`]-driven scheduling
//!   (the Rust analogue of the paper's C++ interface);
//! * [`schedule_with_options`] — scheduling with explicit
//!   [`EngineOptions`] (Farkas cache / ILP warm start toggles), also
//!   returning the run's [`PipelineStats`].
//!
//! Deviations from the paper, documented rather than hidden:
//!
//! * with `negative_coefficients` only the *sum* form of the progression
//!   constraint is emitted (the per-row half-space form would bias the ±
//!   split), which restricts the searched cone exactly like Pluto does;
//! * post-processing (tiling, wavefronts) is applied by the pipeline's
//!   [`postprocess`](crate::pipeline::postprocess) stage and verified
//!   against the independent dependence oracle before being committed.

use polytops_ir::{Schedule, Scop};

use crate::config::SchedulerConfig;
use crate::error::ScheduleError;
use crate::pipeline::{solve, EngineOptions, PipelineStats};
use crate::strategy::{ConfigStrategy, Strategy};

/// Schedules a SCoP under a static configuration.
///
/// This is the JSON-driven entry point: the configuration is wrapped in a
/// [`ConfigStrategy`] and handed to [`schedule_with_strategy`].
///
/// # Errors
///
/// Returns [`ScheduleError::IllegalFusion`] when a user fusion control
/// violates a dependence, [`ScheduleError::InfeasibleCustomConstraints`]
/// when custom constraints empty a dimension's search space, and
/// propagates arithmetic failures from the exact solvers.
///
/// # Examples
///
/// ```
/// use polytops_core::{schedule, SchedulerConfig};
/// use polytops_ir::{Aff, ScopBuilder};
///
/// // for (i = 1; i < N; i++) A[i] = A[i-1];
/// let mut b = ScopBuilder::new("chain");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone()], 8);
/// b.open_loop("i", Aff::val(1), n - 1);
/// b.stmt("S0")
///     .read(a, &[Aff::var("i") - 1])
///     .write(a, &[Aff::var("i")])
///     .add(&mut b);
/// b.close_loop();
/// let scop = b.build().unwrap();
///
/// let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
/// // The chain needs its single loop scheduled as φ = i.
/// assert_eq!(sched.stmt(polytops_ir::StmtId(0)).rows()[0], vec![1, 0, 0]);
/// ```
pub fn schedule(scop: &Scop, config: &SchedulerConfig) -> Result<Schedule, ScheduleError> {
    schedule_with_options(scop, config, &EngineOptions::default()).map(|(sched, _)| sched)
}

/// Schedules a SCoP under a dynamic [`Strategy`] (the Rust analogue of
/// the paper's C++ interface).
///
/// `config` still supplies the global knobs (coefficient bounds, fusion
/// heuristic, directives); the strategy drives the per-dimension choices.
///
/// # Errors
///
/// Same contract as [`schedule`].
pub fn schedule_with_strategy(
    scop: &Scop,
    config: &SchedulerConfig,
    strategy: &mut dyn Strategy,
) -> Result<Schedule, ScheduleError> {
    solve::run(scop, config, strategy, &EngineOptions::default()).map(|(sched, _)| sched)
}

/// Schedules a SCoP with explicit pipeline options and reports the run's
/// statistics (Farkas cache hit rate, ILP solver effort). The default
/// options enable both the Farkas cache and the warm-started solver;
/// disabling them reproduces the cold path for benchmarking.
///
/// # Errors
///
/// Same contract as [`schedule`].
pub fn schedule_with_options(
    scop: &Scop,
    config: &SchedulerConfig,
    options: &EngineOptions,
) -> Result<(Schedule, PipelineStats), ScheduleError> {
    let mut strategy = ConfigStrategy::new(config.clone());
    solve::run(scop, config, &mut strategy, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_deps::{analyze, schedule_respects_dependence};
    use polytops_ir::{Aff, ScopBuilder, StmtId};

    fn chain() -> Scop {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn chain_outer_dimension_carries() {
        let scop = chain();
        let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
        // φ = i, the dependence-carrying outer dimension.
        assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]);
        for dep in analyze(&scop) {
            assert!(schedule_respects_dependence(
                &dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ));
        }
    }

    #[test]
    fn independent_statements_get_full_rank_schedules() {
        // Two independent loops over disjoint arrays.
        let mut b = ScopBuilder::new("indep");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
        b.close_loop();
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1").write(c, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
        for s in 0..2 {
            assert_eq!(sched.stmt(StmtId(s)).iter_matrix().rank(), 1);
        }
        // No dependences: the loop dimension is (vacuously) parallel.
        assert!(analyze(&scop).is_empty());
        assert!(sched.parallel().iter().any(|&p| p));
    }

    #[test]
    fn illegal_user_fusion_is_reported() {
        // S0 -> S1 dependence, but the user distributes S1 before S0.
        let mut b = ScopBuilder::new("pipe");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let bb = b.array("B", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0").write(bb, &[Aff::var("i")]).add(&mut b);
        b.stmt("S1")
            .read(bb, &[Aff::var("i")])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let mut cfg = SchedulerConfig::default();
        cfg.fusion.push(crate::config::FusionControl {
            dimension: 0,
            total_distribution: false,
            groups: vec![vec![1], vec![0]],
        });
        let err = schedule(&scop, &cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::IllegalFusion { .. }), "{err}");
    }

    #[test]
    fn infeasible_custom_constraints_are_reported() {
        let scop = chain();
        let mut cfg = SchedulerConfig::default();
        // φ must use the iterator (progression) yet is forbidden to.
        cfg.custom_constraints
            .set_default(vec!["S0_it_0 = 0".to_string()]);
        let err = schedule(&scop, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                ScheduleError::InfeasibleCustomConstraints { dimension: 0 }
            ),
            "{err}"
        );
    }

    #[test]
    fn options_toggle_cache_and_warm_start_without_changing_results() {
        let scop = chain();
        let cfg = SchedulerConfig::default();
        let (staged, hot) = schedule_with_options(&scop, &cfg, &EngineOptions::default()).unwrap();
        let (cold_sched, cold) = schedule_with_options(
            &scop,
            &cfg,
            &EngineOptions {
                farkas_cache: false,
                warm_start: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(staged, cold_sched, "options must not change the schedule");
        assert_eq!(cold.farkas_hits, 0, "disabled cache cannot hit");
        assert_eq!(hot.farkas_hits + hot.farkas_misses, cold.farkas_misses);
        assert!(
            hot.ilp.nodes <= cold.ilp.nodes,
            "warm start cannot explore more nodes"
        );
    }

    #[test]
    fn fast_path_schedules_the_chain_without_ilp() {
        let scop = chain();
        let (sched, stats) = schedule_with_options(
            &scop,
            &crate::presets::fast_path(),
            &EngineOptions::default(),
        )
        .unwrap();
        assert!(stats.fast_path_dims > 0, "{stats:?}");
        assert_eq!(stats.fast_path_fallbacks, 0, "{stats:?}");
        assert_eq!(stats.ilp.lp_stages, 0, "no ILP stage may run: {stats:?}");
        assert_eq!(stats.ilp.nodes, 0, "no B&B may run: {stats:?}");
        // Same schedule the ILP cascade finds: φ = i.
        assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]);
        for dep in analyze(&scop) {
            assert!(schedule_respects_dependence(
                &dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ));
        }
    }

    #[test]
    fn fast_path_falls_back_to_ilp_when_the_proposal_is_illegal() {
        // The reversed consumer has no legal fused permutation row, so
        // the dimension-matching proposal must fail and the ILP cascade
        // (with its SCC cut) must take over — and stay oracle-legal.
        let scop = polytops_workloads::reversed_consumer();
        let (sched, stats) = schedule_with_options(
            &scop,
            &crate::presets::fast_path(),
            &EngineOptions::default(),
        )
        .unwrap();
        assert!(stats.fast_path_fallbacks > 0, "{stats:?}");
        for dep in analyze(&scop) {
            assert!(schedule_respects_dependence(
                &dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ));
        }
    }

    #[test]
    fn fast_path_shifts_a_negative_offset_producer() {
        // S0 writes B[i]; S1 reads B[j+1]: under the fused identity
        // proposal Δ = j - i with j = i - 1, i.e. Δ = -1 — the shift
        // repair must raise S1's constant by one instead of falling
        // back to the ILP.
        let mut b = ScopBuilder::new("shifted");
        let n = b.param("N");
        let bb = b.array("B", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0").write(bb, &[Aff::var("i")]).add(&mut b);
        b.close_loop();
        b.open_loop("j", Aff::val(0), n - 2);
        b.stmt("S1")
            .read(bb, &[Aff::var("j") + 1])
            .write(c, &[Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let (sched, stats) = schedule_with_options(
            &scop,
            &crate::presets::fast_path(),
            &EngineOptions::default(),
        )
        .unwrap();
        assert!(stats.fast_path_dims > 0, "{stats:?}");
        assert_eq!(stats.fast_path_fallbacks, 0, "{stats:?}");
        assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]);
        assert_eq!(sched.stmt(StmtId(1)).rows()[0], vec![1, 0, 1], "shifted");
        for dep in analyze(&scop) {
            assert!(schedule_respects_dependence(
                &dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ));
        }
    }

    #[test]
    fn shared_seed_store_accelerates_without_changing_the_schedule() {
        use crate::pipeline::SeedStore;
        use std::sync::Arc;
        let scop = polytops_workloads::jacobi_1d();
        let cfg = SchedulerConfig::default();
        let store = Arc::new(SeedStore::new());
        let shared = EngineOptions {
            shared_seeds: Some(Arc::clone(&store)),
            ..EngineOptions::default()
        };
        // First run populates the store, second consumes it.
        let (first, _) = schedule_with_options(&scop, &cfg, &shared).unwrap();
        let (second, stats) = schedule_with_options(&scop, &cfg, &shared).unwrap();
        assert_eq!(first, second, "seeding must not change the schedule");
        assert!(stats.shared_seed_hits > 0, "{stats:?}");
        // And a store-less canonical run agrees bit for bit.
        let (solo, _) = schedule_with_options(
            &scop,
            &cfg,
            &EngineOptions {
                shared_seeds: Some(Arc::new(SeedStore::new())),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(first, solo);
    }
}
