//! The iterative per-dimension scheduling driver (paper Algorithm 1).
//!
//! [`schedule`] computes an affine multidimensional schedule for a SCoP
//! one dimension at a time:
//!
//! 1. the configured [`Strategy`](crate::Strategy) plans the dimension
//!    (cost functions, custom constraints, forced distribution);
//! 2. Farkas-linearized legality constraints (`Δ ≥ 0` for every live
//!    dependence) and the layered cost functions are assembled over the
//!    dimension's [`IlpSpace`];
//! 3. [`polytops_math::ilp_lexmin`] finds the lexicographically best
//!    coefficient vector;
//! 4. the Pluto-style progression constraint (built from
//!    [`polytops_math::orthogonal_complement`] of the rows found so far)
//!    guarantees every statement eventually spans its iteration space;
//! 5. when the ILP is infeasible the live dependence graph is cut into
//!    strongly connected components ([`polytops_deps::dependence_sccs`])
//!    and a constant distribution dimension is emitted instead.
//!
//! The result is a [`polytops_ir::Schedule`] carrying band and
//! parallelism metadata. Legality is independently checkable with
//! [`polytops_deps::schedule_respects_dependence`], which shares no code
//! with the Farkas construction used here.
//!
//! Deviations from the paper, documented rather than hidden:
//!
//! * with `negative_coefficients` only the *sum* form of the progression
//!   constraint is emitted (the per-row half-space form would bias the ±
//!   split), which restricts the searched cone exactly like Pluto does;
//! * post-processing (tiling, wavefronts) is out of scope for this
//!   driver and will live behind [`crate::config::PostProcess`] consumers.

use polytops_deps::{analyze, sccs_topological, strongly_satisfies, zero_distance, Dependence};
use polytops_ir::{Schedule, Scop, StmtId, StmtSchedule};
use polytops_math::{
    ilp_feasible, ilp_lexmin, orthogonal_complement, ConstraintSystem, IntMatrix, RowKind,
};

use crate::config::{CostFn, DirectiveKind, FusionHeuristic, SchedulerConfig};
use crate::constraints::parse_constraints;
use crate::costfn::build_costs;
use crate::error::ScheduleError;
use crate::space::IlpSpace;
use crate::strategy::{
    ConfigStrategy, DimSolution, DimensionPlan, Reaction, Strategy, StrategyState,
};

/// Hard cap on strategy-driven recomputations of one dimension.
const MAX_RECOMPUTE: usize = 3;

/// Schedules a SCoP under a static configuration.
///
/// This is the JSON-driven entry point: the configuration is wrapped in a
/// [`ConfigStrategy`] and handed to [`schedule_with_strategy`].
///
/// # Errors
///
/// Returns [`ScheduleError::IllegalFusion`] when a user fusion control
/// violates a dependence, [`ScheduleError::InfeasibleCustomConstraints`]
/// when custom constraints empty a dimension's search space, and
/// propagates arithmetic failures from the exact solvers.
///
/// # Examples
///
/// ```
/// use polytops_core::{schedule, SchedulerConfig};
/// use polytops_ir::{Aff, ScopBuilder};
///
/// // for (i = 1; i < N; i++) A[i] = A[i-1];
/// let mut b = ScopBuilder::new("chain");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone()], 8);
/// b.open_loop("i", Aff::val(1), n - 1);
/// b.stmt("S0")
///     .read(a, &[Aff::var("i") - 1])
///     .write(a, &[Aff::var("i")])
///     .add(&mut b);
/// b.close_loop();
/// let scop = b.build().unwrap();
///
/// let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
/// // The chain needs its single loop scheduled as φ = i.
/// assert_eq!(sched.stmt(polytops_ir::StmtId(0)).rows()[0], vec![1, 0, 0]);
/// ```
pub fn schedule(scop: &Scop, config: &SchedulerConfig) -> Result<Schedule, ScheduleError> {
    let mut strategy = ConfigStrategy::new(config.clone());
    schedule_with_strategy(scop, config, &mut strategy)
}

/// Schedules a SCoP under a dynamic [`Strategy`] (the Rust analogue of
/// the paper's C++ interface).
///
/// `config` still supplies the global knobs (coefficient bounds, fusion
/// heuristic, directives); the strategy drives the per-dimension choices.
///
/// # Errors
///
/// Same contract as [`schedule`].
pub fn schedule_with_strategy(
    scop: &Scop,
    config: &SchedulerConfig,
    strategy: &mut dyn Strategy,
) -> Result<Schedule, ScheduleError> {
    Engine::new(scop, config).run(strategy)
}

/// Mutable scheduling state threaded through the iterative algorithm.
struct Engine<'a> {
    scop: &'a Scop,
    config: &'a SchedulerConfig,
    deps: Vec<Dependence>,
    /// `live[e]`: dependence `e` has not been strongly satisfied yet.
    live: Vec<bool>,
    /// `rows[stmt][dim]`: committed schedule rows `[T_it, T_par, T_cst]`.
    rows: Vec<Vec<Vec<i64>>>,
    /// Per-statement basis of linearly independent iterator rows.
    basis: Vec<IntMatrix>,
    /// Per-dimension band id and parallelism flag.
    bands: Vec<usize>,
    parallel: Vec<bool>,
    band_id: usize,
}

impl<'a> Engine<'a> {
    fn new(scop: &'a Scop, config: &'a SchedulerConfig) -> Engine<'a> {
        let deps = analyze(scop);
        let nstmts = scop.statements.len();
        Engine {
            scop,
            config,
            live: vec![true; deps.len()],
            deps,
            rows: vec![Vec::new(); nstmts],
            basis: scop
                .statements
                .iter()
                .map(|s| IntMatrix::zeros(0, s.depth()))
                .collect(),
            bands: Vec::new(),
            parallel: Vec::new(),
            band_id: 0,
        }
    }

    fn ranks(&self) -> Vec<usize> {
        self.basis.iter().map(IntMatrix::rows).collect()
    }

    fn complete(&self) -> bool {
        self.scop
            .statements
            .iter()
            .zip(&self.basis)
            .all(|(s, b)| b.rows() == s.depth())
    }

    fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn live_deps(&self) -> Vec<&Dependence> {
        self.deps
            .iter()
            .zip(&self.live)
            .filter_map(|(d, &l)| l.then_some(d))
            .collect()
    }

    fn run(mut self, strategy: &mut dyn Strategy) -> Result<Schedule, ScheduleError> {
        let max_depth = self.scop.max_depth();
        let nstmts = self.scop.statements.len();
        // Every dimension either grows a statement's rank or is a
        // distribution level; this budget is generous for both.
        let budget = 2 * (max_depth + nstmts) + 8;
        let mut dim = 0usize;
        while !self.complete() {
            if dim >= budget {
                return Err(ScheduleError::DimensionBudgetExceeded);
            }
            let ranks = self.ranks();
            let mut plan = strategy.plan(&StrategyState {
                dimension: dim,
                band: self.band_id,
                rows_so_far: &self.rows,
                parallel_so_far: &self.parallel,
                live_deps: self.live_count(),
                ranks: &ranks,
                recompute_count: 0,
            });
            let mut recompute = 0usize;
            loop {
                let solution = self.solve_dimension(&plan, dim)?;
                let ranks = self.ranks();
                let state = StrategyState {
                    dimension: dim,
                    band: self.band_id,
                    rows_so_far: &self.rows,
                    parallel_so_far: &self.parallel,
                    live_deps: self.live_count(),
                    ranks: &ranks,
                    recompute_count: recompute,
                };
                match strategy.react(&state, &solution) {
                    Reaction::Recompute(next) if recompute < MAX_RECOMPUTE => {
                        plan = next;
                        recompute += 1;
                    }
                    _ => {
                        self.commit(&solution);
                        break;
                    }
                }
            }
            dim += 1;
        }
        self.finalize()
    }

    // -----------------------------------------------------------------
    // One dimension.
    // -----------------------------------------------------------------

    fn solve_dimension(
        &self,
        plan: &DimensionPlan,
        dim: usize,
    ) -> Result<DimSolution, ScheduleError> {
        if let Some(groups) = &plan.distribute {
            return self.distribute(groups, true);
        }
        if let Some(solution) = self.solve_ilp(plan, dim)? {
            return Ok(solution);
        }
        // Infeasible ILP. Custom constraints are the only *user* input
        // that can legitimately empty the space (paper §III-D) — but
        // blame them only if the dimension is solvable without them.
        if !plan.extra_constraints.is_empty() {
            let unconstrained = DimensionPlan {
                distribute: None,
                cost_functions: plan.cost_functions.clone(),
                extra_constraints: Vec::new(),
            };
            if self.solve_ilp(&unconstrained, dim)?.is_some() {
                return Err(ScheduleError::InfeasibleCustomConstraints { dimension: dim });
            }
        }
        // Otherwise fall back to cutting the live dependence graph
        // (Algorithm 1, UnfuseSCCs).
        let groups = self.scc_groups(dim)?;
        self.distribute(&groups, false)
    }

    /// Emits a constant (splitting) dimension placing each fusion group
    /// at its index. `user` marks user-driven distribution, which is the
    /// only kind allowed to fail legality.
    fn distribute(&self, groups: &[Vec<usize>], user: bool) -> Result<DimSolution, ScheduleError> {
        let nstmts = self.scop.statements.len();
        let mut group_of: Vec<Option<usize>> = vec![None; nstmts];
        let mut next = 0usize;
        if groups.is_empty() {
            // Total distribution: every statement alone, textual order.
            for (s, g) in group_of.iter_mut().enumerate() {
                *g = Some(s);
            }
        } else {
            for (gi, group) in groups.iter().enumerate() {
                for &s in group {
                    if s >= nstmts {
                        return Err(ScheduleError::IllegalFusion {
                            detail: format!("statement {s} out of range in fusion group"),
                        });
                    }
                    if group_of[s].is_some() {
                        return Err(ScheduleError::IllegalFusion {
                            detail: format!("statement {s} listed in two fusion groups"),
                        });
                    }
                    group_of[s] = Some(gi);
                }
                next = gi + 1;
            }
            // Unlisted statements trail in textual order, one group each.
            for g in group_of.iter_mut() {
                if g.is_none() {
                    *g = Some(next);
                    next += 1;
                }
            }
        }
        let values: Vec<i64> = group_of
            .iter()
            .map(|g| g.expect("every statement grouped") as i64)
            .collect();
        let rows = self.constant_rows(&values);
        // Constant rows must still respect every live dependence.
        for dep in self.live_deps() {
            let src = values[dep.src.0];
            let dst = values[dep.dst.0];
            if dst < src {
                if user {
                    return Err(ScheduleError::IllegalFusion {
                        detail: format!(
                            "distribution places S{} (group {dst}) before its \
                             dependence source S{} (group {src})",
                            dep.dst.0, dep.src.0
                        ),
                    });
                }
                // Algorithm-driven cuts come from a topological SCC
                // order, so this cannot happen.
                unreachable!("SCC cut violated a dependence");
            }
        }
        Ok(DimSolution {
            rows,
            parallel: false,
            constant: true,
        })
    }

    /// Groups statements by live-dependence SCCs for an
    /// infeasibility-driven cut.
    ///
    /// The fusion heuristic only *merges* adjacent SCCs when doing so
    /// keeps a real cut: if heuristic merging collapses everything into
    /// one group (SmartFuse on equal-depth SCCs, or MaxFuse), the cut is
    /// mandatory — the ILP was infeasible — so we degrade to one group
    /// per SCC rather than fail.
    fn scc_groups(&self, dim: usize) -> Result<Vec<Vec<usize>>, ScheduleError> {
        let nstmts = self.scop.statements.len();
        let sccs = sccs_topological(
            nstmts,
            self.deps
                .iter()
                .zip(&self.live)
                .filter(|(_, &l)| l)
                .map(|(d, _)| (d.src.0, d.dst.0)),
        );
        if sccs.len() <= 1 {
            // Nothing to cut: the dimension is genuinely unschedulable.
            return Err(ScheduleError::UnschedulableDimension { dimension: dim });
        }
        let merged: Vec<Vec<usize>> = match self.config.fusion_heuristic {
            FusionHeuristic::NoFuse | FusionHeuristic::MaxFuse => sccs.clone(),
            FusionHeuristic::SmartFuse => {
                // Merge consecutive SCCs of equal dimensionality
                // (Pluto's smartfuse keeps same-depth nests together).
                let mut out: Vec<Vec<usize>> = Vec::new();
                let mut last_dim: Option<usize> = None;
                for scc in sccs.iter().cloned() {
                    let d = scc
                        .iter()
                        .map(|&s| self.scop.statements[s].depth())
                        .max()
                        .unwrap_or(0);
                    match (last_dim, out.last_mut()) {
                        (Some(ld), Some(cur)) if ld == d => cur.extend(scc),
                        _ => out.push(scc),
                    }
                    last_dim = Some(d);
                }
                out
            }
        };
        Ok(if merged.len() > 1 { merged } else { sccs })
    }

    /// Builds and solves the ILP of one dimension. `Ok(None)` means the
    /// space is infeasible (caller decides whether to cut or fail).
    fn solve_ilp(
        &self,
        plan: &DimensionPlan,
        _dim: usize,
    ) -> Result<Option<DimSolution>, ScheduleError> {
        let live: Vec<&Dependence> = self.live_deps();
        // Dependence variables x_e only exist for Feautrier's cost; the
        // proximity-only path keeps the ILP that much smaller.
        let num_dep_vars = if plan.cost_functions.contains(&CostFn::Feautrier) {
            live.len()
        } else {
            0
        };
        let space = IlpSpace::new(
            self.scop,
            self.config.new_variables.clone(),
            num_dep_vars,
            self.config.negative_coefficients,
            self.config.parametric_shift,
        );
        let n = space.total();
        let mut sys = ConstraintSystem::new(n);

        // 1. Legality: Farkas-linearized Δ ≥ 0 per live dependence.
        for dep in &live {
            sys.extend(&crate::costfn::validity_rows(dep, &space)?);
        }

        // 2. Progression: the next row of every incomplete statement must
        //    have a nonzero component in the orthogonal complement of its
        //    committed rows (Eq. 3).
        for (s, stmt) in self.scop.statements.iter().enumerate() {
            let rank = self.basis[s].rows();
            if rank == stmt.depth() || stmt.depth() == 0 {
                continue;
            }
            // `orthogonal_complement` returns a spanning (possibly
            // redundant, sign-symmetric) row set; reduce it to a row
            // basis first — otherwise opposite-sign rows cancel in the
            // sum constraint and the per-row half-spaces collapse the
            // cone to the already-covered subspace.
            let perp = orthogonal_complement(&self.basis[s])?;
            let mut perp_basis = IntMatrix::zeros(0, stmt.depth());
            for h in perp.iter_rows() {
                if h.iter().all(|&c| c == 0) {
                    continue;
                }
                let mut candidate = perp_basis.clone();
                candidate.push_row(h.to_vec());
                if candidate.rank() == candidate.rows() {
                    perp_basis = candidate;
                }
            }
            let mut sum = vec![0i64; n + 1];
            for h in perp_basis.iter_rows() {
                let mut row = vec![0i64; n + 1];
                for (k, &c) in h.iter().enumerate() {
                    space.add_iter_coeff(&mut row, s, k, c);
                    space.add_iter_coeff(&mut sum, s, k, c);
                }
                if !self.config.negative_coefficients {
                    sys.add_ineq(row);
                }
            }
            sum[n] = -1; // Σ h·t ≥ 1
            sys.add_ineq(sum);
        }

        // 3. Box bounds keep branch-and-bound finite and the solution
        //    small: every raw statement variable is non-negative and
        //    bounded; u, w, user and dependence variables likewise.
        self.add_bounds(&space, &mut sys);

        // 4. Cost functions, layered in priority order.
        let cost = build_costs(
            self.scop,
            &space,
            &live,
            &plan.cost_functions,
            self.config.parameter_estimate,
        )?;
        for (kind, row) in &cost.rows {
            match kind {
                RowKind::Eq => sys.add_eq(row.clone()),
                RowKind::Ineq => sys.add_ineq(row.clone()),
            }
        }

        // 5. Custom constraints (the mini-language of §III-A2).
        for (kind, row) in parse_constraints(&plan.extra_constraints, &space)? {
            match kind {
                RowKind::Eq => sys.add_eq(row),
                RowKind::Ineq => sys.add_ineq(row),
            }
        }

        // 6. Directives are suggestions: each is kept only if the space
        //    stays feasible with it (paper §III-B1).
        self.apply_directives(&space, &mut sys);

        // 7. Lexicographic objectives: the configured costs first, then a
        //    coefficient-sum tie-break that drives completed statements
        //    to all-zero rows and keeps coefficients primitive.
        let mut objectives = cost.objectives.clone();
        let mut tie = vec![0i64; n + 1];
        for s in 0..self.scop.statements.len() {
            for v in space.stmt_vars(s) {
                tie[v] = 1;
            }
        }
        tie.pop();
        objectives.push(tie);

        let Some(point) = ilp_lexmin(&sys, &objectives) else {
            return Ok(None);
        };
        let rows: Vec<Vec<i64>> = (0..self.scop.statements.len())
            .map(|s| space.extract_row(&point, s))
            .collect();
        let constant = self
            .scop
            .statements
            .iter()
            .enumerate()
            .all(|(s, stmt)| rows[s][..stmt.depth()].iter().all(|&c| c == 0));
        // Parallel iff no live dependence has a nonzero distance on this
        // dimension (vacuously true without live dependences).
        let parallel = live
            .iter()
            .all(|dep| zero_distance(dep, &rows[dep.src.0], &rows[dep.dst.0]));
        Ok(Some(DimSolution {
            rows,
            parallel,
            constant,
        }))
    }

    /// Box bounds over the raw ILP variables.
    fn add_bounds(&self, space: &IlpSpace, sys: &mut ConstraintSystem) {
        let n = space.total();
        let mut bound = |var: usize, hi: i64| {
            let mut lo_row = vec![0i64; n + 1];
            lo_row[var] = 1;
            sys.add_ineq(lo_row); // var >= 0
            let mut hi_row = vec![0i64; n + 1];
            hi_row[var] = -1;
            hi_row[n] = hi;
            sys.add_ineq(hi_row); // var <= hi
        };
        for j in 0..space.nparams {
            bound(space.u(j), self.config.bound_bound);
        }
        bound(space.w(), self.config.bound_bound);
        for name in space.user_names.clone() {
            let v = space.user(&name).expect("declared user variable");
            bound(v, self.config.bound_bound);
        }
        for e in 0..space.num_deps {
            bound(space.dep_var(e), 1);
        }
        let mult = if space.negative { 2 } else { 1 };
        for (s, stmt) in self.scop.statements.iter().enumerate() {
            let block = space.stmt_vars(s);
            let iter_end = block.start + mult * stmt.depth();
            let const_start = block.end - mult;
            for v in block.clone() {
                let hi = if v < iter_end {
                    self.config.coefficient_bound
                } else if v >= const_start {
                    self.config.constant_bound
                } else {
                    // Parameter-coefficient columns (parametric shift).
                    self.config.coefficient_bound
                };
                bound(v, hi);
            }
        }
    }

    /// Soft directive constraints: each directive's rows are added only
    /// when the system stays feasible with them.
    fn apply_directives(&self, space: &IlpSpace, sys: &mut ConstraintSystem) {
        let n = space.total();
        for d in &self.config.directives {
            let targets: Vec<usize> = match &d.stmts {
                Some(ids) => ids.clone(),
                None => (0..self.scop.statements.len()).collect(),
            };
            let mut extra: Vec<(RowKind, Vec<i64>)> = Vec::new();
            match d.kind {
                DirectiveKind::Parallelize => {
                    // Prefer φ = it_q for targets still at rank 0.
                    for &s in &targets {
                        let stmt = &self.scop.statements[s];
                        if self.basis[s].rows() != 0 || d.iterator >= stmt.depth() {
                            continue;
                        }
                        for k in 0..stmt.depth() {
                            let mut row = vec![0i64; n + 1];
                            space.add_iter_coeff(&mut row, s, k, 1);
                            row[n] = if k == d.iterator { -1 } else { 0 };
                            extra.push((RowKind::Eq, row));
                        }
                    }
                }
                DirectiveKind::Vectorize => {
                    // Keep it_q unscheduled (innermost) while the target
                    // statement still has other dimensions to place.
                    for &s in &targets {
                        let stmt = &self.scop.statements[s];
                        if d.iterator >= stmt.depth() || self.basis[s].rows() + 1 >= stmt.depth() {
                            continue;
                        }
                        let mut row = vec![0i64; n + 1];
                        space.add_iter_coeff(&mut row, s, d.iterator, 1);
                        extra.push((RowKind::Eq, row));
                    }
                }
                DirectiveKind::Sequential => {
                    // Handled when parallel flags are assigned.
                }
            }
            if extra.is_empty() {
                continue;
            }
            let mut probe = sys.clone();
            for (kind, row) in &extra {
                match kind {
                    RowKind::Eq => probe.add_eq(row.clone()),
                    RowKind::Ineq => probe.add_ineq(row.clone()),
                }
            }
            if ilp_feasible(&probe) {
                *sys = probe;
            }
        }
    }

    // -----------------------------------------------------------------
    // Committing and finishing.
    // -----------------------------------------------------------------

    fn commit(&mut self, solution: &DimSolution) {
        for (s, stmt) in self.scop.statements.iter().enumerate() {
            let row = solution.rows[s].clone();
            if !solution.constant {
                let iter_part = row[..stmt.depth()].to_vec();
                let mut candidate = self.basis[s].clone();
                candidate.push_row(iter_part);
                if candidate.rank() == candidate.rows() {
                    self.basis[s] = candidate;
                }
            }
            self.rows[s].push(row);
        }
        // Retire strongly satisfied dependences.
        for (e, dep) in self.deps.iter().enumerate() {
            if self.live[e]
                && strongly_satisfies(dep, &solution.rows[dep.src.0], &solution.rows[dep.dst.0])
            {
                self.live[e] = false;
            }
        }
        // Bands: constant dimensions split permutable bands.
        let parallel = solution.parallel && !self.sequential_override(solution);
        if solution.constant {
            self.band_id += 1;
            self.bands.push(self.band_id);
            self.band_id += 1;
            self.parallel.push(false);
        } else {
            self.bands.push(self.band_id);
            self.parallel.push(parallel);
        }
    }

    /// Whether a `sequential` directive forbids marking this dimension
    /// parallel (the row schedules the directive's iterator).
    fn sequential_override(&self, solution: &DimSolution) -> bool {
        self.config
            .directives
            .iter()
            .filter(|d| d.kind == DirectiveKind::Sequential)
            .any(|d| {
                let targets: Vec<usize> = match &d.stmts {
                    Some(ids) => ids.clone(),
                    None => (0..self.scop.statements.len()).collect(),
                };
                targets.iter().any(|&s| {
                    let stmt = &self.scop.statements[s];
                    d.iterator < stmt.depth() && solution.rows[s][d.iterator] != 0
                })
            })
    }

    /// One constant (splitting) row per statement, placing statement `s`
    /// at position `values[s]`, over its `(iters, params, 1)` columns.
    fn constant_rows(&self, values: &[i64]) -> Vec<Vec<i64>> {
        let np = self.scop.nparams();
        self.scop
            .statements
            .iter()
            .zip(values)
            .map(|(stmt, &v)| {
                let mut row = vec![0i64; stmt.depth() + np + 1];
                row[stmt.depth() + np] = v;
                row
            })
            .collect()
    }

    /// Orders any remaining live dependences with constant rows (the β
    /// dimension of the 2d+1 form) and assembles the final [`Schedule`].
    fn finalize(mut self) -> Result<Schedule, ScheduleError> {
        let nstmts = self.scop.statements.len();
        let mut rounds = 0usize;
        while self
            .deps
            .iter()
            .zip(&self.live)
            .any(|(d, &l)| l && d.src != d.dst)
        {
            if rounds > nstmts {
                return Err(ScheduleError::DimensionBudgetExceeded);
            }
            rounds += 1;
            let order = sccs_topological(
                nstmts,
                self.deps
                    .iter()
                    .zip(&self.live)
                    .filter(|(d, &l)| l && d.src != d.dst)
                    .map(|(d, _)| (d.src.0, d.dst.0)),
            );
            let mut values = vec![0i64; nstmts];
            for (gi, scc) in order.iter().enumerate() {
                for &s in scc {
                    values[s] = gi as i64;
                }
            }
            let rows = self.constant_rows(&values);
            self.commit(&DimSolution {
                rows,
                parallel: false,
                constant: true,
            });
        }
        // If the SCoP has no statements or no dimensions at all, emit a
        // single constant dimension so downstream consumers always see a
        // total order.
        if nstmts > 0 && self.rows[0].is_empty() {
            let values: Vec<i64> = self.scop.statements.iter().map(|s| s.beta[0]).collect();
            let rows = self.constant_rows(&values);
            self.commit(&DimSolution {
                rows,
                parallel: false,
                constant: true,
            });
        }

        let np = self.scop.nparams();
        let mut per_stmt = Vec::with_capacity(nstmts);
        for (s, stmt) in self.scop.statements.iter().enumerate() {
            let mut ss = StmtSchedule::new(stmt.depth(), np);
            for row in &self.rows[s] {
                ss.push_row(row.clone());
            }
            per_stmt.push(ss);
        }
        let mut sched = Schedule::from_parts(per_stmt, self.bands.clone(), self.parallel.clone());

        // Vectorization marking: explicit directives first, then the
        // auto-vectorize heuristic (innermost parallel-ish dimension).
        for d in &self.config.directives {
            if d.kind != DirectiveKind::Vectorize {
                continue;
            }
            let targets: Vec<usize> = match &d.stmts {
                Some(ids) => ids.clone(),
                None => (0..nstmts).collect(),
            };
            for s in targets {
                if let Some(dim) = last_iter_dim(&sched, s, d.iterator) {
                    sched.set_vector_dim(StmtId(s), Some(dim));
                }
            }
        }
        if self.config.auto_vectorize {
            for s in 0..nstmts {
                if sched.vector_dims()[s].is_some() {
                    continue;
                }
                let ss = sched.stmt(StmtId(s));
                let innermost = (0..ss.len()).rev().find(|&d| !ss.row_is_constant(d));
                if let Some(d) = innermost {
                    if sched.parallel().get(d).copied().unwrap_or(false) {
                        sched.set_vector_dim(StmtId(s), Some(d));
                    }
                }
            }
        }
        Ok(sched)
    }
}

/// The last schedule dimension whose row uses iterator `q` of statement
/// `s`, if any.
fn last_iter_dim(sched: &Schedule, s: usize, q: usize) -> Option<usize> {
    let ss = sched.stmt(StmtId(s));
    if q >= ss.depth() {
        return None;
    }
    (0..ss.len()).rev().find(|&d| ss.rows()[d][q] != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_deps::schedule_respects_dependence;
    use polytops_ir::{Aff, ScopBuilder};

    fn chain() -> Scop {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn chain_outer_dimension_carries() {
        let scop = chain();
        let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
        // φ = i, the dependence-carrying outer dimension.
        assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]);
        for dep in analyze(&scop) {
            assert!(schedule_respects_dependence(
                &dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ));
        }
    }

    #[test]
    fn independent_statements_get_full_rank_schedules() {
        // Two independent loops over disjoint arrays.
        let mut b = ScopBuilder::new("indep");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
        b.close_loop();
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1").write(c, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
        for s in 0..2 {
            assert_eq!(sched.stmt(StmtId(s)).iter_matrix().rank(), 1);
        }
        // No dependences: the loop dimension is (vacuously) parallel.
        assert!(analyze(&scop).is_empty());
        assert!(sched.parallel().iter().any(|&p| p));
    }

    #[test]
    fn illegal_user_fusion_is_reported() {
        // S0 -> S1 dependence, but the user distributes S1 before S0.
        let mut b = ScopBuilder::new("pipe");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let bb = b.array("B", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0").write(bb, &[Aff::var("i")]).add(&mut b);
        b.stmt("S1")
            .read(bb, &[Aff::var("i")])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let mut cfg = SchedulerConfig::default();
        cfg.fusion.push(crate::config::FusionControl {
            dimension: 0,
            total_distribution: false,
            groups: vec![vec![1], vec![0]],
        });
        let err = schedule(&scop, &cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::IllegalFusion { .. }), "{err}");
    }

    #[test]
    fn infeasible_custom_constraints_are_reported() {
        let scop = chain();
        let mut cfg = SchedulerConfig::default();
        // φ must use the iterator (progression) yet is forbidden to.
        cfg.custom_constraints
            .set_default(vec!["S0_it_0 = 0".to_string()]);
        let err = schedule(&scop, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                ScheduleError::InfeasibleCustomConstraints { dimension: 0 }
            ),
            "{err}"
        );
    }
}
