//! Ready-made configurations mirroring the paper's Table I presets.
//!
//! Each preset is an ordinary [`SchedulerConfig`] value — tweak fields
//! freely after construction.

use crate::config::{CostFn, DimMap, SchedulerConfig};

/// Pluto-style default: proximity cost, smartfuse, non-negative
/// coefficients (identical to [`SchedulerConfig::default`]).
pub fn pluto() -> SchedulerConfig {
    SchedulerConfig::default()
}

/// Pluto+ style: proximity cost with negative coefficients and
/// parametric shifting enabled.
pub fn pluto_plus() -> SchedulerConfig {
    SchedulerConfig {
        negative_coefficients: true,
        parametric_shift: true,
        ..SchedulerConfig::default()
    }
}

/// Feautrier-style: maximize strongly satisfied dependences on every
/// dimension (inner parallelism).
pub fn feautrier() -> SchedulerConfig {
    SchedulerConfig {
        cost_functions: DimMap::uniform(vec![CostFn::Feautrier]),
        ..SchedulerConfig::default()
    }
}

/// isl-style: proximity first, recomputing a dimension with Feautrier's
/// cost when the solution is not parallel (Listing 3).
pub fn isl_like() -> SchedulerConfig {
    SchedulerConfig {
        isl_fallback: true,
        ..SchedulerConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        assert_eq!(pluto(), SchedulerConfig::default());
        assert!(pluto_plus().negative_coefficients);
        assert!(pluto_plus().parametric_shift);
        assert_eq!(feautrier().cost_functions.get(0), &vec![CostFn::Feautrier]);
        assert!(isl_like().isl_fallback);
    }
}
