//! Ready-made configurations mirroring the paper's Table I presets.
//!
//! Each preset is an ordinary [`SchedulerConfig`] value — tweak fields
//! freely after construction.

use crate::config::{CostFn, DimMap, PostProcess, SchedulerConfig};

/// Pluto-style default: proximity cost, smartfuse, non-negative
/// coefficients (identical to [`SchedulerConfig::default`]).
pub fn pluto() -> SchedulerConfig {
    SchedulerConfig::default()
}

/// Pluto+ style: proximity cost with negative coefficients and
/// parametric shifting enabled.
pub fn pluto_plus() -> SchedulerConfig {
    SchedulerConfig {
        negative_coefficients: true,
        parametric_shift: true,
        ..SchedulerConfig::default()
    }
}

/// Feautrier-style: maximize strongly satisfied dependences on every
/// dimension (inner parallelism).
pub fn feautrier() -> SchedulerConfig {
    SchedulerConfig {
        cost_functions: DimMap::uniform(vec![CostFn::Feautrier]),
        ..SchedulerConfig::default()
    }
}

/// isl-style: proximity first, recomputing a dimension with Feautrier's
/// cost when the solution is not parallel (Listing 3).
pub fn isl_like() -> SchedulerConfig {
    SchedulerConfig {
        isl_fallback: true,
        ..SchedulerConfig::default()
    }
}

/// Heuristic fast-path preset: the fusion + dimension-matching pass
/// proposes every dimension directly from the dependence structure
/// (validated by the exact legality check, ILP fallback per dimension).
/// Trades schedule optimality for solve time — the preset of choice for
/// SCoPs with hundreds of statements, where the joint ILP dominates.
pub fn fast_path() -> SchedulerConfig {
    SchedulerConfig {
        heuristic_fast_path: true,
        ..SchedulerConfig::default()
    }
}

/// Wavefront/tiling preset: the pluto-style search followed by the full
/// post-processing stage — 32×32 rectangular tiling of permutable bands
/// and wavefront (pipelined) skewing when the outer band dimension is
/// sequential but an inner one is parallel. The time-iterated stencil
/// showcase (`cargo run --example demo -- wavefront`).
pub fn wavefront() -> SchedulerConfig {
    SchedulerConfig {
        post: PostProcess {
            tile_sizes: vec![32, 32],
            wavefront: true,
            intra_tile_vectorize: false,
        },
        ..SchedulerConfig::default()
    }
}

/// A machine-derived configuration: the pluto-style search followed by
/// the full post-processing stage with the tile edge sized to the
/// machine's cache budget (largest power of two whose square
/// double-precision tile, times a nominal four arrays, fits —
/// [`polytops_machine::MachineModel::square_tile_edge`]), wavefront
/// skewing and auto/intra-tile vectorization enabled.
///
/// This is the *fixed* machine preset; [`crate::tune::explore`] is the
/// searching version (it tries this shape among others and keeps the
/// best under the model).
pub fn for_machine(machine: &polytops_machine::MachineModel) -> SchedulerConfig {
    // Same power-of-two derivation and 8..=128 clamp as the tuner's
    // lattice edges (crate::tune::tile_edges) — but over a nominal
    // double-precision four-array kernel, since no SCoP is in scope
    // here. For a SCoP whose element size or array count differs, the
    // scop-aware lattice can land on different edges.
    let edge = crate::tune::pow2_floor(machine.square_tile_edge(8, 4), 8, 128);
    SchedulerConfig {
        auto_vectorize: true,
        post: PostProcess {
            tile_sizes: vec![edge],
            wavefront: true,
            intra_tile_vectorize: true,
        },
        ..SchedulerConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        assert_eq!(pluto(), SchedulerConfig::default());
        assert!(pluto_plus().negative_coefficients);
        assert!(pluto_plus().parametric_shift);
        assert_eq!(feautrier().cost_functions.get(0), &vec![CostFn::Feautrier]);
        assert!(isl_like().isl_fallback);
        assert!(fast_path().heuristic_fast_path);
        assert!(wavefront().post.wavefront);
        assert_eq!(wavefront().post.tile_sizes, vec![32, 32]);
    }

    #[test]
    fn for_machine_sizes_tiles_to_the_cache() {
        let big = for_machine(&polytops_machine::MachineModel::default());
        assert!(big.post.wavefront && big.auto_vectorize);
        assert_eq!(big.post.tile_sizes, vec![128], "clamped at 128");
        let tiny = for_machine(&polytops_machine::MachineModel {
            cache_bytes: 16 << 10,
            ..polytops_machine::MachineModel::default()
        });
        // 16 KiB / 4 arrays / 8 B = 512 elements -> 16x16 tiles.
        assert_eq!(tiny.post.tile_sizes, vec![16]);
    }
}
