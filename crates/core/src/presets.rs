//! Ready-made configurations mirroring the paper's Table I presets.
//!
//! Each preset is an ordinary [`SchedulerConfig`] value — tweak fields
//! freely after construction.

use crate::config::{CostFn, DimMap, PostProcess, SchedulerConfig};

/// Pluto-style default: proximity cost, smartfuse, non-negative
/// coefficients (identical to [`SchedulerConfig::default`]).
pub fn pluto() -> SchedulerConfig {
    SchedulerConfig::default()
}

/// Pluto+ style: proximity cost with negative coefficients and
/// parametric shifting enabled.
pub fn pluto_plus() -> SchedulerConfig {
    SchedulerConfig {
        negative_coefficients: true,
        parametric_shift: true,
        ..SchedulerConfig::default()
    }
}

/// Feautrier-style: maximize strongly satisfied dependences on every
/// dimension (inner parallelism).
pub fn feautrier() -> SchedulerConfig {
    SchedulerConfig {
        cost_functions: DimMap::uniform(vec![CostFn::Feautrier]),
        ..SchedulerConfig::default()
    }
}

/// isl-style: proximity first, recomputing a dimension with Feautrier's
/// cost when the solution is not parallel (Listing 3).
pub fn isl_like() -> SchedulerConfig {
    SchedulerConfig {
        isl_fallback: true,
        ..SchedulerConfig::default()
    }
}

/// Wavefront/tiling preset: the pluto-style search followed by the full
/// post-processing stage — 32×32 rectangular tiling of permutable bands
/// and wavefront (pipelined) skewing when the outer band dimension is
/// sequential but an inner one is parallel. The time-iterated stencil
/// showcase (`cargo run --example demo -- wavefront`).
pub fn wavefront() -> SchedulerConfig {
    SchedulerConfig {
        post: PostProcess {
            tile_sizes: vec![32, 32],
            wavefront: true,
            intra_tile_vectorize: false,
        },
        ..SchedulerConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        assert_eq!(pluto(), SchedulerConfig::default());
        assert!(pluto_plus().negative_coefficients);
        assert!(pluto_plus().parametric_shift);
        assert_eq!(feautrier().cost_functions.get(0), &vec![CostFn::Feautrier]);
        assert!(isl_like().isl_fallback);
        assert!(wavefront().post.wavefront);
        assert_eq!(wavefront().post.tile_sizes, vec![32, 32]);
    }
}
