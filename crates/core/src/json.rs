//! A minimal JSON parser and serializer.
//!
//! The build environment has no registry access, so instead of `serde` /
//! `serde_json` the JSON interface of [`crate::SchedulerConfig`] is
//! deserialized by hand from this parser's [`Json`] values. The grammar
//! is standard JSON (RFC 8259) minus `\u` surrogate-pair pedantry.
//! Integer numbers parse as [`Json::Int`]; fractional or exponent forms
//! parse as [`Json::Float`] (the configuration format itself only ever
//! uses integers, but the benchmark reports in `BENCH_schedule.json`
//! carry speedup ratios, and the benches read those files back to merge
//! their sections). The [`std::fmt::Display`] impl serializes a value
//! back out with two-space indentation.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (everything the config format uses).
    Int(i64),
    /// A fractional or exponent-form number (benchmark-report ratios).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is irrelevant to every consumer, so a
    /// sorted map keeps serialization deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload of either number form.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl Json {
    /// Serializes on a single line with no whitespace — the framing the
    /// `polytopsd` line-delimited protocol requires (one JSON document
    /// per `\n`-terminated line). Escaping matches [`fmt::Display`], so
    /// `parse(&v.compact())` round-trips exactly like the pretty form,
    /// and objects still print in key order (deterministic output).
    pub fn compact(&self) -> String {
        fn value(out: &mut String, v: &Json) {
            match v {
                Json::Null | Json::Bool(_) | Json::Int(_) | Json::Float(_) | Json::Str(_) => {
                    // Scalars already print without newlines.
                    out.push_str(&v.to_string());
                }
                Json::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        value(out, item);
                    }
                    out.push(']');
                }
                Json::Object(map) => {
                    out.push('{');
                    for (i, (k, v)) in map.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&Json::Str(k.clone()).to_string());
                        out.push(':');
                        value(out, v);
                    }
                    out.push('}');
                }
            }
        }
        let mut out = String::new();
        value(&mut out, self);
        out
    }
}

impl fmt::Display for Json {
    /// Serializes with two-space indentation and `\n` line ends; objects
    /// print in key order, so output is deterministic.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            for _ in 0..depth {
                f.write_str("  ")?;
            }
            Ok(())
        }
        fn string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
            f.write_str("\"")?;
            for c in s.chars() {
                match c {
                    '"' => f.write_str("\\\"")?,
                    '\\' => f.write_str("\\\\")?,
                    '\n' => f.write_str("\\n")?,
                    '\r' => f.write_str("\\r")?,
                    '\t' => f.write_str("\\t")?,
                    c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                    c => write!(f, "{c}")?,
                }
            }
            f.write_str("\"")
        }
        fn value(f: &mut fmt::Formatter<'_>, v: &Json, depth: usize) -> fmt::Result {
            match v {
                Json::Null => f.write_str("null"),
                Json::Bool(b) => write!(f, "{b}"),
                Json::Int(n) => write!(f, "{n}"),
                Json::Float(x) if x.is_finite() => {
                    if x.fract() == 0.0 {
                        // Keep the value recognizably fractional so it
                        // round-trips as a Float.
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                }
                // JSON has no NaN/Infinity; degrade to null.
                Json::Float(_) => f.write_str("null"),
                Json::Str(s) => string(f, s),
                Json::Array(items) if items.is_empty() => f.write_str("[]"),
                Json::Array(items) => {
                    f.write_str("[\n")?;
                    for (i, item) in items.iter().enumerate() {
                        indent(f, depth + 1)?;
                        value(f, item, depth + 1)?;
                        f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
                    }
                    indent(f, depth)?;
                    f.write_str("]")
                }
                Json::Object(map) if map.is_empty() => f.write_str("{}"),
                Json::Object(map) => {
                    f.write_str("{\n")?;
                    for (i, (k, v)) in map.iter().enumerate() {
                        indent(f, depth + 1)?;
                        string(f, k)?;
                        f.write_str(": ")?;
                        value(f, v, depth + 1)?;
                        f.write_str(if i + 1 < map.len() { ",\n" } else { "\n" })?;
                    }
                    indent(f, depth)?;
                    f.write_str("}")
                }
            }
        }
        value(f, self, 0)
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // RFC 8259 (and serde_json) forbid leading zeros: `0` is fine,
        // `007` is not.
        if self.pos - digits > 1 && self.bytes[digits] == b'0' {
            return Err(format!("number with leading zero at byte {start}"));
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(format!("missing fraction digits at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(format!("missing exponent digits at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if fractional {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                // serde's deny_unknown_fields structs rejected duplicate
                // fields; keep that strictness.
                return Err(format!("duplicate field `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = obj["a"].as_array().unwrap();
        assert_eq!(a[0].as_int(), Some(1));
        assert_eq!(a[1].as_int(), Some(-2));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(obj["b"].as_object().unwrap()["c"].as_bool(), Some(true));
        assert_eq!(obj["b"].as_object().unwrap()["d"], Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn fractional_numbers_parse_as_floats() {
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("-0.25").unwrap(), Json::Float(-0.25));
        assert_eq!(parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
        // Integers stay integers: the config interface depends on it.
        assert_eq!(parse("3").unwrap(), Json::Int(3));
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"a": [1, -2.5, "x\n"], "b": {"c": true, "d": null}, "e": []}"#;
        let v = parse(doc).unwrap();
        let printed = v.to_string();
        assert_eq!(parse(&printed).unwrap(), v);
        // Whole-valued floats stay recognizably fractional.
        let v = Json::Float(2.0);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let doc = r#"{"a": [1, -2.5, "x\n"], "b": {"c": true, "d": null}, "e": []}"#;
        let v = parse(doc).unwrap();
        let line = v.compact();
        assert!(!line.contains('\n'), "compact form must be one line");
        assert!(!line.contains(": "), "compact form has no padding");
        assert_eq!(parse(&line).unwrap(), v);
        assert_eq!(
            Json::Array(vec![Json::Int(1), Json::Str("x".into())]).compact(),
            r#"[1,"x"]"#
        );
    }

    #[test]
    fn rejects_leading_zero_integers() {
        // serde_json rejects these; the in-tree parser must too.
        assert!(parse("007").is_err());
        assert!(parse("-07").is_err());
        assert!(parse(r#"{"a": 012}"#).is_err());
        // A bare (possibly negative) zero is still fine.
        assert_eq!(parse("0").unwrap().as_int(), Some(0));
        assert_eq!(parse("-0").unwrap().as_int(), Some(0));
        assert_eq!(parse("10").unwrap().as_int(), Some(10));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""A\t""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t"));
    }
}
