//! A minimal JSON parser for the configuration interface.
//!
//! The build environment has no registry access, so instead of `serde` /
//! `serde_json` the JSON interface of [`crate::SchedulerConfig`] is
//! deserialized by hand from this parser's [`Json`] values. The grammar is
//! standard JSON (RFC 8259) minus `\u` surrogate-pair pedantry; numbers
//! are accepted in integer form only, which is all the configuration
//! format uses.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (the config format never uses fractions).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is irrelevant to the config format.
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // RFC 8259 (and serde_json) forbid leading zeros: `0` is fine,
        // `007` is not.
        if self.pos - digits > 1 && self.bytes[digits] == b'0' {
            return Err(format!("number with leading zero at byte {start}"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (the config format uses integers)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("bad number `{text}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                // serde's deny_unknown_fields structs rejected duplicate
                // fields; keep that strictness.
                return Err(format!("duplicate field `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = obj["a"].as_array().unwrap();
        assert_eq!(a[0].as_int(), Some(1));
        assert_eq!(a[1].as_int(), Some(-2));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(obj["b"].as_object().unwrap()["c"].as_bool(), Some(true));
        assert_eq!(obj["b"].as_object().unwrap()["d"], Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn rejects_leading_zero_integers() {
        // serde_json rejects these; the in-tree parser must too.
        assert!(parse("007").is_err());
        assert!(parse("-07").is_err());
        assert!(parse(r#"{"a": 012}"#).is_err());
        // A bare (possibly negative) zero is still fine.
        assert_eq!(parse("0").unwrap().as_int(), Some(0));
        assert_eq!(parse("-0").unwrap().as_int(), Some(0));
        assert_eq!(parse("10").unwrap().as_int(), Some(10));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""A\t""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t"));
    }
}
