//! Scheduler error types.

use std::error::Error;
use std::fmt;

/// Errors produced by the PolyTOPS scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A user fusion/distribution specification violates a dependence
    /// (paper §III-D: only custom constraints and fusion control can make
    /// the problem infeasible).
    IllegalFusion {
        /// Human-readable explanation.
        detail: String,
    },
    /// User custom constraints made every dimension infeasible.
    InfeasibleCustomConstraints {
        /// The scheduling dimension that could not be computed.
        dimension: usize,
    },
    /// A custom constraint string could not be parsed.
    ConstraintSyntax {
        /// The offending constraint text.
        text: String,
        /// What went wrong.
        detail: String,
    },
    /// The JSON configuration was malformed.
    Config {
        /// What went wrong.
        detail: String,
    },
    /// Internal exact-arithmetic failure (overflow).
    Math(polytops_math::MathError),
    /// A dimension's ILP was infeasible and the live dependence graph
    /// had nothing left to cut — indicates an internal modeling bug.
    UnschedulableDimension {
        /// The scheduling dimension that could not be computed.
        dimension: usize,
    },
    /// The scheduler exceeded its dimension budget without completing —
    /// indicates an internal bug; reported rather than looping forever.
    DimensionBudgetExceeded,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::IllegalFusion { detail } => {
                write!(f, "illegal fusion/distribution specification: {detail}")
            }
            ScheduleError::InfeasibleCustomConstraints { dimension } => write!(
                f,
                "custom constraints make scheduling dimension {dimension} infeasible"
            ),
            ScheduleError::ConstraintSyntax { text, detail } => {
                write!(f, "cannot parse constraint `{text}`: {detail}")
            }
            ScheduleError::Config { detail } => write!(f, "bad configuration: {detail}"),
            ScheduleError::Math(e) => write!(f, "arithmetic failure: {e}"),
            ScheduleError::UnschedulableDimension { dimension } => write!(
                f,
                "scheduling dimension {dimension} is unschedulable: the live \
                 dependence graph cannot be cut further"
            ),
            ScheduleError::DimensionBudgetExceeded => {
                write!(f, "scheduler exceeded its dimension budget")
            }
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<polytops_math::MathError> for ScheduleError {
    fn from(e: polytops_math::MathError) -> ScheduleError {
        ScheduleError::Math(e)
    }
}
