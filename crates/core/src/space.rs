//! The ILP variable space for one scheduling dimension.
//!
//! Column layout (one instance per dimension being solved):
//!
//! ```text
//! [ u_0 .. u_{np-1} | w | user vars | dep vars x_e | stmt_0 block | stmt_1 block | … ]
//! ```
//!
//! Each statement block holds the transformation coefficients `T_{S,i}` of
//! Eq. (1): iterator coefficients, parameter coefficients and the constant
//! term. When negative coefficients are enabled (Pluto+ preset), every
//! coefficient `c` is represented as `c⁺ − c⁻` with both parts ≥ 0, so a
//! block doubles in size.

use polytops_ir::Scop;

/// Per-statement variable offsets inside the ILP space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtBlock {
    /// Offset of the block's first variable.
    pub offset: usize,
    /// Statement iterator count.
    pub depth: usize,
}

/// Variable layout for one scheduling dimension's ILP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlpSpace {
    /// Number of SCoP parameters.
    pub nparams: usize,
    /// Offset of the proximity bound coefficients `u` (length `nparams`).
    pub u_offset: usize,
    /// Offset of the proximity bound constant `w`.
    pub w_offset: usize,
    /// Offset and names of user-declared variables.
    pub user_offset: usize,
    /// Names of user variables (config `new_variables`).
    pub user_names: Vec<String>,
    /// Offset of the per-dependence satisfaction variables `x_e`
    /// (Feautrier cost function); one per *live* dependence.
    pub dep_offset: usize,
    /// Number of dependence variables.
    pub num_deps: usize,
    /// Per-statement coefficient blocks.
    pub stmts: Vec<StmtBlock>,
    /// Whether coefficients are split into ± parts.
    pub negative: bool,
    /// Whether parameter coefficients exist (parametric shifting); when
    /// `false`, `T_par ≡ 0` and the blocks omit those columns.
    pub parametric_shift: bool,
    total: usize,
}

impl IlpSpace {
    /// Builds the layout for `scop` with `num_deps` live dependences.
    pub fn new(
        scop: &Scop,
        user_names: Vec<String>,
        num_deps: usize,
        negative: bool,
        parametric_shift: bool,
    ) -> IlpSpace {
        let np = scop.nparams();
        let u_offset = 0;
        let w_offset = np;
        let user_offset = np + 1;
        let dep_offset = user_offset + user_names.len();
        let mut next = dep_offset + num_deps;
        let mult = if negative { 2 } else { 1 };
        let mut stmts = Vec::with_capacity(scop.statements.len());
        for s in &scop.statements {
            let d = s.depth();
            stmts.push(StmtBlock {
                offset: next,
                depth: d,
            });
            let par_cols = if parametric_shift { np } else { 0 };
            next += mult * (d + par_cols + 1);
        }
        IlpSpace {
            nparams: np,
            u_offset,
            w_offset,
            user_offset,
            user_names,
            dep_offset,
            num_deps,
            stmts,
            negative,
            parametric_shift,
            total: next,
        }
    }

    /// Total number of ILP variables.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Index of `u_j`.
    pub fn u(&self, j: usize) -> usize {
        debug_assert!(j < self.nparams);
        self.u_offset + j
    }

    /// Index of `w`.
    pub fn w(&self) -> usize {
        self.w_offset
    }

    /// Index of a user variable by name.
    pub fn user(&self, name: &str) -> Option<usize> {
        self.user_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.user_offset + i)
    }

    /// Index of the dependence variable `x_e`.
    pub fn dep_var(&self, e: usize) -> usize {
        debug_assert!(e < self.num_deps);
        self.dep_offset + e
    }

    fn block_width(&self, depth: usize) -> usize {
        let par = if self.parametric_shift {
            self.nparams
        } else {
            0
        };
        let mult = if self.negative { 2 } else { 1 };
        mult * (depth + par + 1)
    }

    /// Adds `k * T_{stmt,it[i]}` to an accumulator row over `total() + 1`
    /// columns (the trailing column is the constant and is never touched
    /// here). Handles the ± split transparently.
    pub fn add_iter_coeff(&self, row: &mut [i64], stmt: usize, i: usize, k: i64) {
        let b = &self.stmts[stmt];
        debug_assert!(i < b.depth);
        if self.negative {
            row[b.offset + 2 * i] += k;
            row[b.offset + 2 * i + 1] -= k;
        } else {
            row[b.offset + i] += k;
        }
    }

    /// Adds `k * T_{stmt,par[j]}` (no-op when parametric shifting is off).
    pub fn add_param_coeff(&self, row: &mut [i64], stmt: usize, j: usize, k: i64) {
        if !self.parametric_shift {
            return;
        }
        let b = &self.stmts[stmt];
        let mult = if self.negative { 2 } else { 1 };
        let base = b.offset + mult * b.depth;
        if self.negative {
            row[base + 2 * j] += k;
            row[base + 2 * j + 1] -= k;
        } else {
            row[base + j] += k;
        }
    }

    /// Adds `k * T_{stmt,const}`.
    pub fn add_const_coeff(&self, row: &mut [i64], stmt: usize, k: i64) {
        let b = &self.stmts[stmt];
        let mult = if self.negative { 2 } else { 1 };
        let par = if self.parametric_shift {
            self.nparams
        } else {
            0
        };
        let base = b.offset + mult * (b.depth + par);
        if self.negative {
            row[base] += k;
            row[base + 1] -= k;
        } else {
            row[base] += k;
        }
    }

    /// Recovers the statement's schedule row `[T_it, T_par, T_cst]`
    /// (over `(iters, params, 1)`) from an ILP solution point.
    pub fn extract_row(&self, point: &[i64], stmt: usize) -> Vec<i64> {
        let b = &self.stmts[stmt];
        let mut row = Vec::with_capacity(b.depth + self.nparams + 1);
        let mult = if self.negative { 2 } else { 1 };
        for i in 0..b.depth {
            let v = if self.negative {
                point[b.offset + 2 * i] - point[b.offset + 2 * i + 1]
            } else {
                point[b.offset + i]
            };
            row.push(v);
        }
        let base = b.offset + mult * b.depth;
        for j in 0..self.nparams {
            if self.parametric_shift {
                let v = if self.negative {
                    point[base + 2 * j] - point[base + 2 * j + 1]
                } else {
                    point[base + j]
                };
                row.push(v);
            } else {
                row.push(0);
            }
        }
        let par = if self.parametric_shift {
            self.nparams
        } else {
            0
        };
        let cbase = b.offset + mult * (b.depth + par);
        let c = if self.negative {
            point[cbase] - point[cbase + 1]
        } else {
            point[cbase]
        };
        row.push(c);
        row
    }

    /// Iterates over all raw variable indices of a statement block.
    pub fn stmt_vars(&self, stmt: usize) -> std::ops::Range<usize> {
        let b = &self.stmts[stmt];
        b.offset..b.offset + self.block_width(b.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::{Aff, ScopBuilder};

    fn scop2() -> Scop {
        let mut b = ScopBuilder::new("two");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1").write(a, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn layout_without_extras() {
        let scop = scop2();
        let sp = IlpSpace::new(&scop, vec![], 0, false, false);
        // u(1) + w(1) + S0 (1 it + 1 cst) + S1 (2 it + 1 cst).
        assert_eq!(sp.total(), 2 + 2 + 3);
        assert_eq!(sp.u(0), 0);
        assert_eq!(sp.w(), 1);
        assert_eq!(sp.stmts[0].offset, 2);
        assert_eq!(sp.stmts[1].offset, 4);
    }

    #[test]
    fn extract_row_round_trips() {
        let scop = scop2();
        let sp = IlpSpace::new(&scop, vec!["x".into()], 2, false, true);
        let mut point = vec![0i64; sp.total()];
        // S1: T_it = (2, 3), T_par = (1), T_cst = 5.
        let mut row = vec![0i64; sp.total() + 1];
        sp.add_iter_coeff(&mut row, 1, 0, 1);
        let idx = row.iter().position(|&v| v == 1).unwrap();
        point[idx] = 2;
        let mut row = vec![0i64; sp.total() + 1];
        sp.add_iter_coeff(&mut row, 1, 1, 1);
        let idx = row.iter().position(|&v| v == 1).unwrap();
        point[idx] = 3;
        let mut row = vec![0i64; sp.total() + 1];
        sp.add_param_coeff(&mut row, 1, 0, 1);
        let idx = row.iter().position(|&v| v == 1).unwrap();
        point[idx] = 1;
        let mut row = vec![0i64; sp.total() + 1];
        sp.add_const_coeff(&mut row, 1, 1);
        let idx = row.iter().position(|&v| v == 1).unwrap();
        point[idx] = 5;
        assert_eq!(sp.extract_row(&point, 1), vec![2, 3, 1, 5]);
    }

    #[test]
    fn negative_split_extracts_net_value() {
        let scop = scop2();
        let sp = IlpSpace::new(&scop, vec![], 0, true, false);
        let mut point = vec![0i64; sp.total()];
        // S0 iter coeff: plus = 1, minus = 3 => net -2.
        let b = sp.stmts[0].offset;
        point[b] = 1;
        point[b + 1] = 3;
        assert_eq!(sp.extract_row(&point, 0), vec![-2, 0, 0]);
    }

    #[test]
    fn user_vars_are_addressable() {
        let scop = scop2();
        let sp = IlpSpace::new(&scop, vec!["x".into(), "y".into()], 0, false, false);
        assert_eq!(sp.user("x"), Some(sp.user_offset));
        assert_eq!(sp.user("y"), Some(sp.user_offset + 1));
        assert_eq!(sp.user("z"), None);
    }
}
