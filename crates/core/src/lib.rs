//! The PolyTOPS iterative scheduler core.
//!
//! This crate turns a [`polytops_ir::Scop`] plus a [`SchedulerConfig`]
//! into a legal [`polytops_ir::Schedule`], dimension by dimension
//! (paper Algorithm 1):
//!
//! * [`config`] — the compiled configuration and the JSON interface of
//!   the paper's Listing 2;
//! * [`strategy`] — dynamic strategies, the Rust analogue of the C++
//!   interface (Listing 3);
//! * [`space`] — the fixed ILP variable layout of a SCoP;
//! * [`costfn`] — Farkas templates plus the predefined cost functions
//!   (proximity, Feautrier, contiguity, big-loops-first, user variables);
//! * [`constraints`] — the custom-constraint mini-language (§III-A2);
//! * [`pipeline`] — the staged driver (legality → objectives → solve →
//!   postprocess), with its cached Farkas systems and warm-started ILP;
//! * [`scenario`] — the scenario engine: N (SCoP × config) jobs sharing
//!   `Arc`-wrapped Farkas caches per SCoP and executing on a
//!   work-stealing thread pool (the paper's per-scenario
//!   reconfiguration loop);
//! * [`registry`] — the cross-request persistence layer of the
//!   `polytopsd` service: SCoPs deduped by canonical fingerprint, their
//!   dependence analyses and Farkas caches kept resident under an LRU
//!   bound;
//! * [`tune`] — the autotuner: synthesizes a machine-derived lattice of
//!   configurations, runs it through the scenario engine and picks the
//!   winner under the static performance model
//!   (`polytops_machine::model`);
//! * [`scheduler`] — the stable entry points over the pipeline;
//! * [`json`] — the in-tree JSON parser behind
//!   [`SchedulerConfig::from_json`] and the benchmark reports;
//! * [`presets`] — ready-made Pluto/Pluto+/Feautrier/isl-style configs;
//! * [`error`] — the error type shared by every stage.
//!
//! # Example
//!
//! ```
//! use polytops_core::{schedule, SchedulerConfig};
//! use polytops_ir::{Aff, ScopBuilder, StmtId};
//!
//! // for (i = 1; i < N; i++) A[i] = A[i-1];
//! let mut b = ScopBuilder::new("chain");
//! let n = b.param("N");
//! let a = b.array("A", &[n.clone()], 8);
//! b.open_loop("i", Aff::val(1), n - 1);
//! b.stmt("S0")
//!     .read(a, &[Aff::var("i") - 1])
//!     .write(a, &[Aff::var("i")])
//!     .add(&mut b);
//! b.close_loop();
//! let scop = b.build().unwrap();
//!
//! let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
//! assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]); // φ = i
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod constraints;
pub mod costfn;
pub mod error;
pub mod json;
pub mod pipeline;
pub mod presets;
pub mod registry;
pub mod scenario;
pub mod scheduler;
pub mod space;
pub mod strategy;
pub mod tune;

pub use config::{
    CostFn, DimMap, Directive, DirectiveKind, FusionControl, FusionHeuristic, PostProcess,
    SchedulerConfig,
};
pub use error::ScheduleError;
pub use pipeline::{CacheSession, EngineOptions, FarkasCache, PipelineStats, SeedStore};
pub use registry::{LearnedConfig, RegistryStats, ScopEntry, ScopRegistry};
pub use scenario::{winner, winner_by, Scenario, ScenarioReport, ScenarioResult, ScenarioSet};
pub use scheduler::{schedule, schedule_with_options, schedule_with_strategy};
pub use space::{IlpSpace, StmtBlock};
pub use strategy::{ConfigStrategy, DimSolution, DimensionPlan, Reaction, Strategy, StrategyState};
pub use tune::{explore, MachineModel, TuneBudget, TuneOutcome};
