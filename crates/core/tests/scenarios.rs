//! Scenario-engine integration tests: determinism of sharded execution,
//! cross-scenario Farkas-cache amortization, and component-split
//! stitching — all certified against the independent legality oracle.

use polytops_core::scenario::{winner, ScenarioSet};
use polytops_core::{presets, EngineOptions};
use polytops_deps::{analyze, schedule_respects_dependence};
use polytops_ir::{Aff, Schedule, Scop, ScopBuilder, StmtId};
use polytops_workloads::sweep::standard_sweep;
use polytops_workloads::{matmul, producer_consumer, stencil_chain};

fn assert_legal(name: &str, scop: &Scop, sched: &Schedule) {
    for (e, dep) in analyze(scop).iter().enumerate() {
        assert!(
            schedule_respects_dependence(
                dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ),
            "{name}: dependence {e} (S{} -> S{}) violated",
            dep.src.0,
            dep.dst.0,
        );
    }
}

#[test]
fn sharded_sweep_is_bit_identical_to_sequential() {
    let set = standard_sweep();
    let sequential = set.run_sequential();
    for threads in [2, 4] {
        let sharded = set.run_sharded(threads);
        assert_eq!(sequential.len(), sharded.len());
        for (a, b) in sequential.iter().zip(&sharded) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.schedule, b.schedule, "{}@{threads} threads", a.name);
            // The hit/miss *split* may differ under concurrency (two
            // scenarios can race to eliminate an entry) but the lookup
            // count is part of the deterministic work.
            assert_eq!(
                a.stats.farkas_hits + a.stats.farkas_misses,
                b.stats.farkas_hits + b.stats.farkas_misses,
                "{}@{threads} threads",
                a.name
            );
        }
    }
}

#[test]
fn sweep_results_match_the_plain_scheduler_and_stay_legal() {
    // Cache/analysis sharing must be invisible in the results: every
    // sweep schedule equals what a cold standalone run produces.
    let set = standard_sweep();
    let results = set.run_sharded(2);
    for (r, scenario) in results.iter().zip(set.scenarios()) {
        let report = r.as_ref().unwrap();
        let (_, scop) = &set.scops()[scenario.scop];
        let standalone = polytops_core::schedule(scop, &scenario.config).unwrap();
        assert_eq!(report.schedule, standalone, "{}", report.name);
        assert_legal(&report.name, scop, &report.schedule);
    }
    assert!(winner(&results).is_some());
}

#[test]
fn farkas_hits_grow_with_scenario_count_for_a_fixed_scop() {
    // The cross-scenario cache contract: for one SCoP scheduled K times
    // under one layout, total hits grow with K and every scenario after
    // the first eliminates nothing.
    let total_hits = |k: usize| -> (usize, Vec<usize>) {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("matmul", matmul());
        for i in 0..k {
            set.add_scenario(scop, format!("pluto#{i}"), presets::pluto());
        }
        let results = set.run_sequential();
        let reports: Vec<_> = results.iter().map(|r| r.as_ref().unwrap()).collect();
        (
            reports.iter().map(|r| r.stats.farkas_hits).sum(),
            reports.iter().map(|r| r.stats.farkas_misses).collect(),
        )
    };
    let (h1, _) = total_hits(1);
    let (h2, m2) = total_hits(2);
    let (h4, m4) = total_hits(4);
    assert!(h2 > h1, "2 scenarios must out-hit 1: {h1} vs {h2}");
    assert!(h4 > h2, "4 scenarios must out-hit 2: {h2} vs {h4}");
    for misses in [&m2[1..], &m4[1..]] {
        assert!(
            misses.iter().all(|&m| m == 0),
            "repeat scenarios must replay everything: {misses:?}"
        );
    }
}

#[test]
fn mixed_kernel_sweep_reports_cross_scenario_hits() {
    // The acceptance-criterion shape: >= 4 scenarios over >= 3 kernels
    // with cross-scenario hits (sweep hits beyond what isolated runs
    // score through intra-run dimension replay alone).
    let mut set = ScenarioSet::new();
    for (name, scop) in [
        ("stencil_chain", stencil_chain()),
        ("matmul", matmul()),
        ("producer_consumer", producer_consumer()),
    ] {
        let id = set.add_scop(name, scop);
        set.add_scenario(id, format!("{name}/pluto"), presets::pluto());
        set.add_scenario(id, format!("{name}/feautrier"), presets::feautrier());
    }
    assert!(set.len() >= 4);
    let shared: usize = set
        .run_sharded(2)
        .iter()
        .map(|r| r.as_ref().unwrap().stats.farkas_hits)
        .sum();
    let isolated: usize = set
        .run_isolated()
        .iter()
        .map(|r| r.as_ref().unwrap().stats.farkas_hits)
        .sum();
    assert!(
        shared > isolated,
        "cross-scenario hits must exist: shared {shared} vs isolated {isolated}"
    );
}

#[test]
fn component_split_is_legal_oracle_certified_and_deterministic() {
    // Three dependence components: a carried chain, an independent
    // producer/consumer pair, and an isolated loop.
    let mut b = ScopBuilder::new("three_comps");
    let n = b.param("N");
    let a = b.array("A", &[n.clone()], 8);
    let bb = b.array("B", &[n.clone()], 8);
    let c = b.array("C", &[n.clone()], 8);
    let d = b.array("D", &[n.clone()], 8);
    b.open_loop("i", Aff::val(1), n.clone() - 1);
    b.stmt("S0")
        .read(a, &[Aff::var("i") - 1])
        .write(a, &[Aff::var("i")])
        .add(&mut b);
    b.close_loop();
    b.open_loop("j", Aff::val(0), n.clone() - 1);
    b.stmt("S1").write(bb, &[Aff::var("j")]).add(&mut b);
    b.stmt("S2")
        .read(bb, &[Aff::var("j")])
        .write(c, &[Aff::var("j")])
        .add(&mut b);
    b.close_loop();
    b.open_loop("k", Aff::val(0), n - 1);
    b.stmt("S3").write(d, &[Aff::var("k")]).add(&mut b);
    b.close_loop();
    let scop = b.build().unwrap();

    let mut set = ScenarioSet::new();
    let id = set.add_scop("three_comps", scop);
    set.add_scenario(id, "pluto", presets::pluto());
    set.add_scenario_with_options(
        id,
        "feautrier-cold",
        presets::feautrier(),
        EngineOptions::default(),
    );
    set.split_components(true);

    let sequential = set.run_sequential();
    let sharded = set.run_sharded(3);
    for (a, b) in sequential.iter().zip(&sharded) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.schedule, b.schedule, "{}", a.name);
        assert_eq!(a.sub_jobs, 3, "{}", a.name);
        assert_legal(&a.name, &set.scops()[id].1, &a.schedule);
        // The leading dimension is the distribution cut: components in
        // textual order.
        let cut: Vec<i64> = (0..4)
            .map(|s| {
                let ss = a.schedule.stmt(StmtId(s));
                assert!(ss.row_is_constant(0), "{}: dim 0 constant", a.name);
                *ss.rows()[0].last().unwrap()
            })
            .collect();
        assert_eq!(cut, vec![0, 1, 1, 2], "{}", a.name);
        // Every statement still spans its iteration space.
        for s in 0..4 {
            assert_eq!(a.schedule.stmt(StmtId(s)).iter_matrix().rank(), 1);
        }
    }
}
