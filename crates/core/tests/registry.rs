//! Tests for the SCoP registry: canonical fingerprinting (dedupe under
//! access permutation), LRU eviction, cross-run cache persistence via
//! `add_resident_scop`, and determinism of registry-backed scheduling
//! under concurrency.

use std::sync::Arc;

use polytops_core::registry::{canonical_text, fingerprint, ScopRegistry};
use polytops_core::scenario::ScenarioSet;
use polytops_core::{presets, SchedulerConfig};
use polytops_ir::{Aff, Scop, ScopBuilder};
use polytops_workloads::{jacobi_1d, matmul, producer_consumer, stencil_chain};

/// `producer_consumer` with each statement's accesses listed in the
/// opposite order — the dependence analysis of this SCoP enumerates a
/// permuted dependence vector, but the scheduling problem is identical.
fn producer_consumer_permuted() -> Scop {
    let mut b = ScopBuilder::new("renamed_even");
    let n = b.param("N");
    let a = b.array("A", &[n.clone()], 8);
    let bb = b.array("B", &[n.clone()], 8);
    let c = b.array("C", &[n.clone()], 8);
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.stmt("S0")
        .write(bb, &[Aff::var("i")])
        .read(a, &[Aff::var("i")])
        .text("B[i] = A[i];")
        .add(&mut b);
    b.close_loop();
    b.open_loop("j", Aff::val(0), n - 1);
    b.stmt("S1")
        .write(c, &[Aff::var("j")])
        .read(bb, &[Aff::var("j")])
        .text("C[j] = B[j];")
        .add(&mut b);
    b.close_loop();
    b.build().unwrap()
}

#[test]
fn fingerprint_ignores_name_and_access_order() {
    let original = producer_consumer();
    let permuted = producer_consumer_permuted();
    assert_ne!(
        original.statements[0].accesses, permuted.statements[0].accesses,
        "the permutation must actually reorder accesses"
    );
    assert_eq!(canonical_text(&original), canonical_text(&permuted));
    assert_eq!(fingerprint(&original), fingerprint(&permuted));
    // ...but a genuinely different SCoP keeps a different identity.
    assert_ne!(fingerprint(&original), fingerprint(&matmul()));
    assert_ne!(canonical_text(&original), canonical_text(&stencil_chain()));
}

#[test]
fn permuted_submissions_dedupe_onto_one_entry() {
    let registry = ScopRegistry::new(8);
    let (first, hit) = registry.resolve("producer_consumer", &producer_consumer());
    assert!(!hit);
    let (second, hit) = registry.resolve("permuted", &producer_consumer_permuted());
    assert!(hit, "permuted access order must dedupe");
    assert!(Arc::ptr_eq(&first, &second));
    // The representative is the first registration; both clients are
    // served from it.
    assert_eq!(first.name(), "producer_consumer");
    assert_eq!(registry.len(), 1);
    let stats = registry.stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
}

#[test]
fn lru_evicts_the_coldest_entry() {
    let registry = ScopRegistry::new(2);
    registry.resolve("chain", &stencil_chain());
    registry.resolve("matmul", &matmul());
    // Touch chain so matmul becomes coldest.
    let (_, hit) = registry.resolve("chain", &stencil_chain());
    assert!(hit);
    registry.resolve("jacobi", &jacobi_1d());
    assert_eq!(registry.len(), 2);
    assert_eq!(registry.stats().evictions, 1);
    let (_, hit) = registry.resolve("matmul", &matmul());
    assert!(!hit, "matmul was the coldest entry and must be gone");
    let (_, hit) = registry.resolve("jacobi", &jacobi_1d());
    assert!(hit, "jacobi stays resident");
}

#[test]
fn resident_scheduling_replays_across_runs_and_matches_offline() {
    let registry = ScopRegistry::new(8);
    let configs = [
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
    ];

    let run = |registry: &ScopRegistry| {
        let (entry, _) = registry.resolve("matmul", &matmul());
        let mut set = ScenarioSet::new();
        let scop = set.add_resident_scop(entry);
        for (name, config) in &configs {
            set.add_scenario(scop, *name, config.clone());
        }
        set.run_sequential()
    };

    // Cold run: eliminations happen (misses), cache fills.
    let cold = run(&registry);
    assert!(cold[0].as_ref().unwrap().stats.farkas_misses > 0);

    // Warm run — a fresh ScenarioSet, as a new service batch would
    // build: zero misses anywhere, bit-identical schedules.
    let warm = run(&registry);
    for (c, w) in cold.iter().zip(&warm) {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(c.schedule, w.schedule, "resident replay is bit-identical");
        assert_eq!(w.stats.farkas_misses, 0, "warm run must not re-eliminate");
        assert!(w.stats.farkas_hits > 0);
    }

    // And both equal the offline path (plain add_scop, nothing shared).
    let mut offline = ScenarioSet::new();
    let scop = offline.add_scop("matmul", matmul());
    for (name, config) in &configs {
        offline.add_scenario(scop, *name, config.clone());
    }
    for (r, o) in warm.iter().zip(offline.run_sequential()) {
        assert_eq!(r.as_ref().unwrap().schedule, o.unwrap().schedule);
    }
}

#[test]
fn layouts_get_separate_resident_caches() {
    let registry = ScopRegistry::new(8);
    let (entry, _) = registry.resolve("chain", &stencil_chain());
    let pluto = entry.cache_for(&presets::pluto());
    let pluto_again = entry.cache_for(&presets::pluto());
    assert!(Arc::ptr_eq(&pluto, &pluto_again), "same layout, same cache");
    // pluto+ widens the variable layout → its own cache.
    let plus = entry.cache_for(&presets::pluto_plus());
    assert!(!Arc::ptr_eq(&pluto, &plus));
    assert_eq!(entry.layouts(), 2);
}

#[test]
fn concurrent_resolvers_agree_bit_for_bit() {
    // N threads, each resolving the same kernels and scheduling them
    // through resident sets, must all produce the offline answer — the
    // core of the service's N-clients contract, without the TCP layer.
    let registry = Arc::new(ScopRegistry::new(8));
    let config = SchedulerConfig::default();

    let offline = {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("jacobi", jacobi_1d());
        set.add_scenario(scop, "pluto", config.clone());
        set.run_sequential()[0].as_ref().unwrap().schedule.clone()
    };

    let schedules: Vec<_> = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let config = config.clone();
                s.spawn(move || {
                    let (entry, _) = registry.resolve("jacobi", &jacobi_1d());
                    let mut set = ScenarioSet::new();
                    let scop = set.add_resident_scop(entry);
                    set.add_scenario(scop, "pluto", config);
                    set.run_sequential()[0].as_ref().unwrap().schedule.clone()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for sched in &schedules {
        assert_eq!(
            *sched, offline,
            "every concurrent client gets the offline answer"
        );
    }
    assert_eq!(registry.len(), 1, "one resident entry for all threads");
}
