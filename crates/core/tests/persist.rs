//! Property tests for the registry snapshot/restore API (vendored
//! proptest shim): for arbitrary admission sequences over the
//! reference kernels — with arbitrary Farkas-cache layouts resident —
//! snapshot → restore → snapshot round-trips the registry *exactly*:
//! canonical SCoP text, LRU order, fingerprints, layout sets, and
//! learned tuning winners.
//!
//! This is the invariant the `polytopsd` persistence layer is built
//! on: what a snapshot captures is sufficient to rebuild a registry
//! that is indistinguishable from the one that wrote it.

use polytops_core::registry::{fingerprint, CacheLayout, LearnedConfig, ScopRegistry};
use polytops_workloads::all_kernels;
use proptest::prelude::*;

/// The cache-layout variants a scheduling config can induce (the
/// `(negative_coefficients, parametric_shift, new_variables)` key).
fn layout(idx: usize) -> CacheLayout {
    match idx {
        0 => (false, false, vec![]),
        1 => (true, false, vec![]),
        2 => (false, true, vec![]),
        _ => (true, true, vec!["x".to_string()]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_restore_snapshot_is_identity(
        admissions in collection::vec((0usize..7, 0usize..4, 0i64..3), 1..10),
        capacity in 2usize..5,
    ) {
        let kernels = all_kernels();
        let registry = ScopRegistry::new(capacity);
        for &(k, l, w) in &admissions {
            let (name, scop) = &kernels[k % kernels.len()];
            let (entry, _) = registry.resolve(name, scop);
            // Materialize a Farkas cache under this layout, as a
            // scheduling run with the matching config would.
            entry.prewarm_layout(&layout(l)).expect("prewarm");
            // Remember a tuning winner under a per-variant key, as an
            // autotune exploration would; re-learning an identical
            // winner must be a no-op, a changed one an overwrite.
            entry.learn(&format!("key{w}"), LearnedConfig {
                winner: format!("pluto/tile{}", 16 << w),
                score: -1000 - w,
            });
        }

        let snap_a = registry.snapshot();
        prop_assert!(snap_a.entries.len() <= capacity, "LRU bound");

        let restored = ScopRegistry::new(capacity);
        let report = restored.restore(&snap_a).expect("restore");
        prop_assert_eq!(report.entries, snap_a.entries.len());
        prop_assert_eq!(
            report.layouts,
            snap_a.entries.iter().map(|e| e.layouts.len()).sum::<usize>()
        );
        prop_assert_eq!(
            report.learned,
            snap_a.entries.iter().map(|e| e.learned.len()).sum::<usize>()
        );

        // The round-trip: canonical text, LRU order and layout sets are
        // all inside the snapshot value, so one equality covers them.
        let snap_b = restored.snapshot();
        prop_assert_eq!(&snap_a, &snap_b);

        // Fingerprints derive from canonical text; check they really
        // address the same entries in both registries.
        for entry in &snap_a.entries {
            let scop = polytops_ir::parse_scop(&entry.scop_text).expect("canonical text parses");
            let fp = fingerprint(&scop);
            prop_assert!(registry.find_by_fingerprint(fp).is_some());
            prop_assert!(restored.find_by_fingerprint(fp).is_some());
        }
    }
}
