//! Property tests for the schedule-tree lowering: the explicit tree is
//! only trustworthy if its instance order *is* the flat schedule's
//! lexicographic order, and if the post-processing transforms (tile /
//! wavefront / vectorize marks) keep it a strict total order over the
//! statement instances.

use std::cmp::Ordering;

use polytops_core::{schedule, SchedulerConfig};
use polytops_ir::{instance_cmp_paths, MarkKind, Schedule, ScheduleTree, Scop, StmtId};
use polytops_workloads::{all_kernels, jacobi_1d, matmul, sweep::preset_grid};

const PARAMS: [i64; 2] = [7, 5]; // generous enough for every kernel's (N, T)

/// Enumerates the integer points of a statement's domain inside a small
/// box (the reference kernels all live near the origin).
fn sample_points(scop: &Scop, sid: usize) -> Vec<Vec<i64>> {
    let stmt = &scop.statements[sid];
    let d = stmt.depth();
    let np = scop.nparams();
    let params = &PARAMS[..np];
    let mut out = Vec::new();
    let mut point = vec![-1i64; d];
    loop {
        let mut full: Vec<i64> = point.clone();
        full.extend_from_slice(params);
        if stmt.domain.contains_point(&full) {
            out.push(point.clone());
        }
        // Odometer over [-1, 8]^d.
        let mut i = 0;
        loop {
            if i == d {
                return out;
            }
            point[i] += 1;
            if point[i] <= 8 {
                break;
            }
            point[i] = -1;
            i += 1;
        }
    }
}

/// Lexicographic comparison of two flat timestamps.
fn flat_cmp(sched: &Schedule, a: (usize, &[i64]), b: (usize, &[i64]), params: &[i64]) -> Ordering {
    let eval = |(sid, iters): (usize, &[i64])| -> Vec<i64> {
        sched
            .stmt(StmtId(sid))
            .rows()
            .iter()
            .map(|row| {
                let mut v = 0;
                for (i, &x) in iters.iter().enumerate() {
                    v += row[i] * x;
                }
                for (p, &x) in params.iter().enumerate() {
                    v += row[iters.len() + p] * x;
                }
                v + row[iters.len() + params.len()]
            })
            .collect()
    };
    eval(a).cmp(&eval(b))
}

/// Every sampled instance of every statement, with its owner.
fn all_instances(scop: &Scop) -> Vec<(usize, Vec<i64>)> {
    (0..scop.statements.len())
        .flat_map(|sid| sample_points(scop, sid).into_iter().map(move |p| (sid, p)))
        .collect()
}

#[test]
fn lowered_tree_order_equals_flat_order_on_every_sweep_kernel() {
    for (kernel, scop) in all_kernels() {
        for (preset, config) in preset_grid() {
            let sched =
                schedule(&scop, &config).unwrap_or_else(|e| panic!("{kernel}/{preset}: {e:?}"));
            // The property is about the *lowering*: the tree built from
            // the flat rows must replay their lexicographic order
            // exactly (post-processing transforms are certified
            // separately).
            let tree = ScheduleTree::lower(&sched);
            let paths = tree.stmt_paths();
            let instances = all_instances(&scop);
            let params = &PARAMS[..scop.nparams()];
            for (i, (sa, pa)) in instances.iter().enumerate() {
                for (sb, pb) in &instances[i..] {
                    let flat = flat_cmp(&sched, (*sa, pa), (*sb, pb), params);
                    let tree_ord = instance_cmp_paths(&paths[*sa], &paths[*sb], pa, pb, params);
                    assert_eq!(
                        flat, tree_ord,
                        "{kernel}/{preset}: S{sa}{pa:?} vs S{sb}{pb:?} ordered {tree_ord:?} \
                         by the tree but {flat:?} by the flat schedule"
                    );
                }
            }
        }
    }
}

/// The transformed tree of a post-processed schedule must stay a strict
/// total order: antisymmetric, and `Equal` exactly on identical
/// instances — tiling or wavefronting may *reorder* instances but must
/// never collapse or duplicate them.
fn assert_strict_total_order(name: &str, scop: &Scop, sched: &Schedule) {
    let tree = sched.tree().expect("post-processing sets a tree");
    let paths = tree.stmt_paths();
    let instances = all_instances(scop);
    let params = &PARAMS[..scop.nparams()];
    for (sa, pa) in &instances {
        for (sb, pb) in &instances {
            let ab = instance_cmp_paths(&paths[*sa], &paths[*sb], pa, pb, params);
            let ba = instance_cmp_paths(&paths[*sb], &paths[*sa], pb, pa, params);
            assert_eq!(ab, ba.reverse(), "{name}: order must be antisymmetric");
            let identical = sa == sb && pa == pb;
            assert_eq!(
                ab == Ordering::Equal,
                identical,
                "{name}: S{sa}{pa:?} vs S{sb}{pb:?} compared {ab:?}"
            );
        }
    }
}

#[test]
fn tiled_wavefronted_tree_remains_a_strict_total_order() {
    let scop = jacobi_1d();
    let mut cfg = SchedulerConfig::default();
    cfg.post.tile_sizes = vec![4, 4];
    cfg.post.wavefront = true;
    let sched = schedule(&scop, &cfg).unwrap();
    let marks = sched.tree().unwrap().marks();
    assert!(marks.iter().any(|m| matches!(m, MarkKind::Tile(_))));
    assert!(marks.iter().any(|m| matches!(m, MarkKind::Wavefront)));
    assert_strict_total_order("jacobi_1d tiled+wavefront", &scop, &sched);
}

#[test]
fn vectorize_mark_survives_and_preserves_the_instance_set() {
    let scop = matmul();
    let mut cfg = SchedulerConfig::default();
    cfg.post.tile_sizes = vec![4, 4, 4];
    cfg.post.intra_tile_vectorize = true;
    cfg.auto_vectorize = true;
    let sched = schedule(&scop, &cfg).unwrap();
    let marks = sched.tree().unwrap().marks();
    assert!(marks.iter().any(|m| matches!(m, MarkKind::Tile(_))));
    assert!(
        marks.iter().any(|m| matches!(m, MarkKind::Vectorize(_))),
        "intra-tile vectorization must leave a mark, got {marks:?}"
    );
    assert_strict_total_order("heat_2d tiled+vectorize", &scop, &sched);
}

#[test]
fn marks_survive_a_remap_round_trip() {
    let scop = jacobi_1d();
    let mut cfg = SchedulerConfig::default();
    cfg.post.tile_sizes = vec![4, 4];
    cfg.post.wavefront = true;
    let sched = schedule(&scop, &cfg).unwrap();
    let tree = sched.tree().unwrap();
    let identity: Vec<usize> = (0..tree.nstmts).collect();
    let round = tree.remap(tree.nstmts, &identity, 0);
    assert_eq!(round.marks(), tree.marks(), "remap must keep every mark");
    assert_eq!(
        round.root, tree.root,
        "identity remap must be structural identity"
    );
}
