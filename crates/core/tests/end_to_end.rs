//! End-to-end scheduling tests: build SCoPs with `ScopBuilder`, schedule
//! them under several configurations, and certify every analyzed
//! dependence with `schedule_respects_dependence` — the independent
//! legality oracle that shares no code with the scheduler's Farkas
//! construction.

use polytops_core::{
    presets, schedule, schedule_with_options, EngineOptions, FusionHeuristic, SchedulerConfig,
};
use polytops_deps::{
    analyze, order_steps, schedule_respects_dependence, steps_respect_dependence,
    strongly_satisfies,
};
use polytops_ir::{BandMember, MarkKind, Schedule, Scop, StmtId, TreeNode};
use polytops_workloads::{
    all_kernels, jacobi_1d, matmul, producer_consumer, reversed_consumer, stencil_chain,
};

/// Certifies the schedule *tree* against every dependence via the
/// instance-order oracle (the flat oracle in [`assert_legal`] does not
/// see tile or wavefront members).
fn assert_tree_legal(name: &str, scop: &Scop, sched: &Schedule) {
    let tree = sched.tree().unwrap_or_else(|| panic!("{name}: want tree"));
    let paths = tree.stmt_paths();
    for (e, dep) in analyze(scop).iter().enumerate() {
        let steps = order_steps(&paths[dep.src.0], &paths[dep.dst.0]);
        assert!(
            steps_respect_dependence(dep, &steps),
            "{name}: tree violates dependence {e} (S{} -> S{})",
            dep.src.0,
            dep.dst.0,
        );
    }
}

/// The `(sizes, tile_members, point_members)` of every tile nest in the
/// tree, outermost first.
fn tile_nests(node: &TreeNode) -> Vec<(Vec<i64>, Vec<BandMember>, Vec<BandMember>)> {
    fn peel(mut n: &TreeNode) -> &TreeNode {
        while let TreeNode::Mark { child, .. } = n {
            n = child;
        }
        n
    }
    fn walk(node: &TreeNode, out: &mut Vec<(Vec<i64>, Vec<BandMember>, Vec<BandMember>)>) {
        if let TreeNode::Mark {
            kind: MarkKind::Tile(sizes),
            child,
        } = node
        {
            if let TreeNode::Band {
                members: tiles,
                child: inner,
                ..
            } = peel(child)
            {
                if let TreeNode::Band {
                    members: points,
                    child: rest,
                    ..
                } = peel(inner)
                {
                    out.push((sizes.clone(), tiles.clone(), points.clone()));
                    walk(rest, out);
                    return;
                }
            }
        }
        match node {
            TreeNode::Band { child, .. }
            | TreeNode::Filter { child, .. }
            | TreeNode::Mark { child, .. } => walk(child, out),
            TreeNode::Sequence(children) => children.iter().for_each(|c| walk(c, out)),
            TreeNode::Leaf => {}
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out);
    out
}

/// The members of the first band under a `Mark::Wavefront`.
fn wavefront_band(node: &TreeNode) -> Option<Vec<BandMember>> {
    match node {
        TreeNode::Mark {
            kind: MarkKind::Wavefront,
            child,
        } => {
            if let TreeNode::Band { members, .. } = child.as_ref() {
                return Some(members.clone());
            }
            wavefront_band(child)
        }
        TreeNode::Band { child, .. }
        | TreeNode::Filter { child, .. }
        | TreeNode::Mark { child, .. } => wavefront_band(child),
        TreeNode::Sequence(children) => children.iter().find_map(wavefront_band),
        TreeNode::Leaf => None,
    }
}

/// Every configuration a kernel must stay legal under.
fn configs() -> Vec<(&'static str, SchedulerConfig)> {
    vec![
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
        ("isl_like", presets::isl_like()),
    ]
}

/// Asserts the schedule orders every dependence of `scop` and that every
/// statement's schedule spans its iteration space.
fn assert_legal(name: &str, scop: &Scop, sched: &Schedule) {
    let deps = analyze(scop);
    assert!(
        !deps.is_empty() || scop.statements.len() == 1,
        "{name}: want deps"
    );
    for (e, dep) in deps.iter().enumerate() {
        assert!(
            schedule_respects_dependence(
                dep,
                sched.stmt(dep.src).rows(),
                sched.stmt(dep.dst).rows(),
            ),
            "{name}: dependence {e} ({:?} S{} -> S{} level {}) violated",
            dep.kind,
            dep.src.0,
            dep.dst.0,
            dep.level,
        );
    }
    for (s, stmt) in scop.statements.iter().enumerate() {
        assert_eq!(
            sched.stmt(StmtId(s)).iter_matrix().rank(),
            stmt.depth(),
            "{name}: S{s} schedule must span its iteration space"
        );
    }
    // Metadata arity.
    assert_eq!(sched.bands().len(), sched.dims(), "{name}: bands");
    assert_eq!(sched.parallel().len(), sched.dims(), "{name}: parallel");
}

#[test]
fn all_kernels_legal_under_all_configs() {
    for (kname, scop) in &all_kernels() {
        for (cname, cfg) in configs() {
            let sched = schedule(scop, &cfg)
                .unwrap_or_else(|e| panic!("{kname}/{cname}: scheduling failed: {e}"));
            assert_legal(&format!("{kname}/{cname}"), scop, &sched);
        }
    }
}

#[test]
fn stencil_chain_outer_dimension_carries() {
    let scop = stencil_chain();
    let sched = schedule(&scop, &presets::pluto()).unwrap();
    // The acceptance criterion: φ = i on the outer dimension…
    assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]);
    // …and that dimension strongly satisfies (carries) every dependence.
    for dep in analyze(&scop) {
        let row = &sched.stmt(StmtId(0)).rows()[0];
        assert!(strongly_satisfies(&dep, row, row));
    }
}

#[test]
fn matmul_schedule_is_full_rank_identity_like() {
    let scop = matmul();
    let sched = schedule(&scop, &presets::pluto()).unwrap();
    let ss = sched.stmt(StmtId(0));
    assert_eq!(ss.iter_matrix().rank(), 3);
    // Proximity keeps the self-dependence on C[i][j] at distance 0 on
    // the first two dimensions (i and j stay outer, k carries).
    for dep in analyze(&scop) {
        let rows = ss.rows();
        assert!(schedule_respects_dependence(&dep, rows, rows));
    }
}

#[test]
fn producer_consumer_fuses_under_proximity() {
    let scop = producer_consumer();
    let sched = schedule(&scop, &presets::pluto()).unwrap();
    // Proximity pulls both statements onto the same affine function of
    // their (aligned) iterators: φ_S0 = i and φ_S1 = j with equal
    // constants — a fused loop.
    let r0 = &sched.stmt(StmtId(0)).rows()[0];
    let r1 = &sched.stmt(StmtId(1)).rows()[0];
    assert_eq!(r0, &vec![1, 0, 0], "producer row");
    assert_eq!(r1, &vec![1, 0, 0], "consumer row");
    // The loop-independent dependence is resolved by a later constant
    // (splitting) dimension ordering S0 before S1.
    let t0 = sched.timestamp(StmtId(0), &[3], &[10]);
    let t1 = sched.timestamp(StmtId(1), &[3], &[10]);
    assert!(t0 < t1, "S0(3) must run before S1(3): {t0:?} vs {t1:?}");
    assert_legal("producer_consumer/pluto", &scop, &sched);
}

#[test]
fn json_config_drives_scheduling_end_to_end() {
    let cfg = SchedulerConfig::from_json(
        r#"{
          "scheduling_strategy": {
            "ILP_construction": [
              { "scheduling_dimension": "default",
                "cost_functions": ["feautrier"] }
            ]
          }
        }"#,
    )
    .unwrap();
    let scop = producer_consumer();
    let sched = schedule(&scop, &cfg).unwrap();
    assert_legal("producer_consumer/json-feautrier", &scop, &sched);
}

#[test]
fn custom_constraints_shape_the_solution() {
    // Force the consumer to run one iteration behind the producer:
    // shifting is the only way to satisfy S1_cst >= 1 with proximity.
    let mut cfg = presets::pluto();
    cfg.custom_constraints
        .set_default(vec!["S1_cst >= 1".to_string()]);
    let scop = producer_consumer();
    let sched = schedule(&scop, &cfg).unwrap();
    assert_legal("producer_consumer/shifted", &scop, &sched);
    assert_eq!(sched.stmt(StmtId(1)).rows()[0][2], 1, "S1 shifted by 1");
}

#[test]
fn forced_distribution_works_under_every_fusion_heuristic() {
    // The reversed consumer cannot be fused: the dimension-0 ILP is
    // infeasible and the scheduler must cut between the SCCs — under
    // every heuristic, including the merging ones (SmartFuse, MaxFuse),
    // which degrade to a per-SCC cut when merging would undo the cut.
    let scop = reversed_consumer();
    for heuristic in [
        FusionHeuristic::SmartFuse,
        FusionHeuristic::MaxFuse,
        FusionHeuristic::NoFuse,
    ] {
        let cfg = SchedulerConfig {
            fusion_heuristic: heuristic,
            ..SchedulerConfig::default()
        };
        let sched = schedule(&scop, &cfg)
            .unwrap_or_else(|e| panic!("reversed_consumer/{heuristic:?}: {e}"));
        assert_legal(&format!("reversed_consumer/{heuristic:?}"), &scop, &sched);
        // All of S0 must run before the B-reversing S1.
        let t0 = sched.timestamp(StmtId(0), &[9], &[10]);
        let t1 = sched.timestamp(StmtId(1), &[0], &[10]);
        assert!(t0 < t1, "{heuristic:?}: {t0:?} vs {t1:?}");
    }
}

#[test]
fn vacuous_custom_constraints_do_not_mask_a_required_cut() {
    // The constraint is satisfiable; the dimension-0 infeasibility comes
    // from the dependences. The scheduler must still cut instead of
    // blaming the constraint.
    let mut cfg = presets::pluto();
    cfg.custom_constraints
        .set_default(vec!["S0_cst >= 0".to_string()]);
    let scop = reversed_consumer();
    let sched = schedule(&scop, &cfg).expect("vacuous constraint must not error");
    assert_legal("reversed_consumer/vacuous-constraint", &scop, &sched);
}

#[test]
fn fusion_entry_without_groups_is_a_no_op() {
    // `{"scheduling_dimension": 0}` with neither groups nor total
    // distribution must not silently distribute everything.
    let mut cfg = presets::pluto();
    cfg.fusion.push(polytops_core::FusionControl {
        dimension: 0,
        total_distribution: false,
        groups: Vec::new(),
    });
    let scop = producer_consumer();
    let sched = schedule(&scop, &cfg).unwrap();
    // Proximity still fuses: same iteration of S0 and S1 stays adjacent.
    let r0 = &sched.stmt(StmtId(0)).rows()[0];
    let r1 = &sched.stmt(StmtId(1)).rows()[0];
    assert_eq!(r0, &vec![1, 0, 0]);
    assert_eq!(r1, &vec![1, 0, 0]);
    assert_legal("producer_consumer/noop-fusion-entry", &scop, &sched);
}

#[test]
fn tiled_stencil_is_legal_and_records_tile_bands() {
    // The PostProcess stage tiles jacobi's permutable (t, t+i) band; the
    // flat schedule rows are untouched, so legality must hold verbatim,
    // and the tree gains a tile band over the point band.
    let scop = jacobi_1d();
    let mut cfg = presets::pluto();
    cfg.post.tile_sizes = vec![32, 32];
    let sched = schedule(&scop, &cfg).unwrap();
    assert_legal("jacobi_1d/tiled", &scop, &sched);
    assert_tree_legal("jacobi_1d/tiled", &scop, &sched);
    let nests = tile_nests(&sched.tree().unwrap().root);
    assert_eq!(nests.len(), 1, "one tiled band");
    let (sizes, tiles, points) = &nests[0];
    assert_eq!(sizes, &vec![32, 32]);
    assert_eq!(points.len(), 2, "the full loop band is tiled");
    // Tile counters are the point members' floors by the tile size.
    for (t, p) in tiles.iter().zip(points) {
        assert_eq!(t.terms.len(), 1);
        assert_eq!(t.terms[0].div, 32);
        assert_eq!(t.terms[0].rows, p.terms[0].rows);
    }
}

#[test]
fn wavefronted_matmul_is_legal_and_exposes_inner_parallelism() {
    // Feautrier carries matmul's k-dependences on the first dimension,
    // leaving the inner dimensions parallel: the wavefront precondition.
    let scop = matmul();
    let mut cfg = presets::feautrier();
    cfg.post.wavefront = true;
    let plain = schedule(&scop, &presets::feautrier()).unwrap();
    let sched = schedule(&scop, &cfg).unwrap();
    assert_legal("matmul/wavefront", &scop, &sched);
    assert_tree_legal("matmul/wavefront", &scop, &sched);
    // The flat rows are untouched — the wavefront lives on the tree…
    assert_eq!(sched.stmt(StmtId(0)).rows(), plain.stmt(StmtId(0)).rows());
    let band = wavefront_band(&sched.tree().unwrap().root).expect("a wavefronted band");
    // …whose outer member became the band sum (a genuine transformation)…
    let expected: Vec<i64> = (0..5)
        .map(|c| (0..3).map(|d| plain.stmt(StmtId(0)).rows()[d][c]).sum())
        .collect();
    assert_eq!(band[0].terms.len(), 1, "affine skew of an untiled band");
    assert_eq!(band[0].terms[0].div, 1);
    assert_eq!(band[0].terms[0].rows[0], expected);
    // …and the inner members stay coincident behind the wavefront.
    assert!(!band[0].coincident, "wavefront member is sequential");
    assert!(
        band[1].coincident && band[2].coincident,
        "inner members coincident: {:?}",
        band.iter().map(|m| m.coincident).collect::<Vec<_>>()
    );
}

#[test]
fn intra_tile_vectorize_moves_the_parallel_loop_innermost() {
    // Matmul under pluto: band (i, j, k) with parallel = [T, T, F] and k
    // innermost (it carries the C self-dependences). Intra-tile
    // vectorization must swap a parallel loop into the innermost slot —
    // legally (the permuted band stays oracle-clean).
    let scop = matmul();
    let mut cfg = presets::pluto();
    cfg.post.tile_sizes = vec![16];
    cfg.post.intra_tile_vectorize = true;
    let sched = schedule(&scop, &cfg).unwrap();
    assert_legal("matmul/intra-tile-vec", &scop, &sched);
    assert_tree_legal("matmul/intra-tile-vec", &scop, &sched);
    let nests = tile_nests(&sched.tree().unwrap().root);
    assert_eq!(nests.len(), 1);
    let (_, _, points) = &nests[0];
    assert!(
        points.last().unwrap().coincident,
        "innermost point member must end up coincident: {:?}",
        points.iter().map(|m| m.coincident).collect::<Vec<_>>()
    );
    // Compare against the same config without the swap: the innermost
    // member used to be the carrying (sequential) one.
    let mut plain_cfg = presets::pluto();
    plain_cfg.post.tile_sizes = vec![16];
    let plain = schedule(&scop, &plain_cfg).unwrap();
    let plain_nests = tile_nests(&plain.tree().unwrap().root);
    let (_, _, plain_points) = &plain_nests[0];
    assert!(
        !plain_points.last().unwrap().coincident,
        "without the swap k stays innermost"
    );
    assert_eq!(
        points.last().unwrap().terms[0].rows,
        plain_points[plain_points.len() - 2].terms[0].rows,
        "the coincident member moved innermost"
    );
}

#[test]
fn farkas_cache_hits_across_dimensions() {
    // Matmul keeps its dependences live across all three dimensions, so
    // every post-first-dimension Farkas lookup must be a cache hit.
    let (_, stats) =
        schedule_with_options(&matmul(), &presets::pluto(), &EngineOptions::default()).unwrap();
    assert!(stats.farkas_misses > 0, "first dimension must miss");
    assert!(
        stats.farkas_hits >= stats.farkas_misses,
        "3 dimensions with a stable live set must mostly hit: {stats:?}"
    );
    assert!(stats.farkas_hit_rate() >= 0.5, "{stats:?}");

    // The cold path answers every lookup with a fresh elimination.
    let (_, cold) = schedule_with_options(
        &matmul(),
        &presets::pluto(),
        &EngineOptions {
            farkas_cache: false,
            warm_start: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(cold.farkas_hits, 0);
    assert_eq!(cold.farkas_misses, stats.farkas_hits + stats.farkas_misses);
}

#[test]
fn warm_start_reduces_solver_nodes_on_the_kernel_suite() {
    let mut warm_nodes = 0usize;
    let mut cold_nodes = 0usize;
    for (name, scop) in all_kernels() {
        let (warm_sched, warm) =
            schedule_with_options(&scop, &presets::pluto(), &EngineOptions::default()).unwrap();
        let (cold_sched, cold) = schedule_with_options(
            &scop,
            &presets::pluto(),
            &EngineOptions {
                farkas_cache: false,
                warm_start: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            warm_sched, cold_sched,
            "{name}: options must not change results"
        );
        warm_nodes += warm.ilp.nodes;
        cold_nodes += cold.ilp.nodes;
    }
    assert!(
        warm_nodes < cold_nodes,
        "warm start must save branch-and-bound nodes: {warm_nodes} vs {cold_nodes}"
    );
}

#[test]
fn total_distribution_splits_the_loops() {
    let mut cfg = presets::pluto();
    cfg.fusion.push(polytops_core::FusionControl {
        dimension: 0,
        total_distribution: true,
        groups: Vec::new(),
    });
    let scop = producer_consumer();
    let sched = schedule(&scop, &cfg).unwrap();
    assert_legal("producer_consumer/distributed", &scop, &sched);
    // Dimension 0 is the user's constant split: S0 before S1 everywhere.
    let t0 = sched.timestamp(StmtId(0), &[9], &[10]);
    let t1 = sched.timestamp(StmtId(1), &[0], &[10]);
    assert!(
        t0 < t1,
        "all of S0 must precede all of S1: {t0:?} vs {t1:?}"
    );
}
