//! End-to-end tests for the cost-model subsystem: feature extraction on
//! real scheduled kernels, and the autotuner's selection / determinism
//! / certification contract.

use polytops_core::tune::{self, MachineModel, TuneBudget};
use polytops_core::{presets, schedule};
use polytops_deps::analyze;
use polytops_machine::model::{extract_features, model_score};
use polytops_workloads::{jacobi_1d, matmul, producer_consumer};

#[test]
fn tiled_stencil_has_bounded_footprint() {
    // The wavefront preset skews, tiles (32x32) and wavefronts the
    // time-iterated stencil; the extracted footprint must be the tile's
    // — independent of the parameter estimate — and every reuse must be
    // capped by the tile edge, not the iteration space.
    let scop = jacobi_1d();
    let deps = analyze(&scop);
    let tiled = schedule(&scop, &presets::wavefront()).unwrap();
    let marks = tiled.tree().expect("post-processing sets a tree").marks();
    assert!(
        marks
            .iter()
            .any(|m| matches!(m, polytops_ir::MarkKind::Tile(_))),
        "wavefront preset tiles"
    );
    let f = extract_features(&scop, &tiled, &deps, 4096);
    assert!(f.tiled);
    assert_eq!(f.footprint_bytes, 8 * 32 * 32, "one double array, one tile");
    assert!(
        f.reuse_distances.iter().all(|&r| r <= 32),
        "tile-capped reuse, got {:?}",
        f.reuse_distances
    );

    let plain = schedule(&scop, &presets::pluto()).unwrap();
    let fp = extract_features(&scop, &plain, &deps, 4096);
    assert!(fp.footprint_bytes > f.footprint_bytes);
    assert!(fp.reuse_distances.iter().max() >= Some(&4096));
}

#[test]
fn wavefronted_matmul_reports_an_outer_parallel_dim() {
    let scop = matmul();
    let deps = analyze(&scop);
    let sched = schedule(&scop, &presets::wavefront()).unwrap();
    let f = extract_features(&scop, &sched, &deps, 64);
    assert!(f.outer_parallel, "matmul's i-tile loop is parallel: {f:?}");
    assert!(f.parallel_dims >= 1);
    assert_eq!(f.sync_events, 1, "coarse-grain: one fork/join");
    assert!(f.max_band_width >= 2, "permutable (tilable) band survives");
}

#[test]
fn model_prefers_parallel_tiled_matmul_over_sequential() {
    let scop = matmul();
    let deps = analyze(&scop);
    let machine = MachineModel::default();
    let tiled = schedule(&scop, &presets::wavefront()).unwrap();
    let plain = schedule(&scop, &presets::pluto()).unwrap();
    let tiled_score = model_score(&machine, &extract_features(&scop, &tiled, &deps, 64));
    let plain_score = model_score(&machine, &extract_features(&scop, &plain, &deps, 64));
    assert!(
        tiled_score >= plain_score,
        "tiling must never hurt under the model: {tiled_score} vs {plain_score}"
    );
}

#[test]
fn explore_beats_or_matches_the_default_preset() {
    let machine = MachineModel::default();
    for scop in [matmul(), jacobi_1d(), producer_consumer()] {
        let budget = TuneBudget {
            threads: 2,
            ..TuneBudget::default()
        };
        let outcome = tune::explore(&scop, &machine, &budget).expect("kernels schedule");
        assert!(
            outcome.certified,
            "{}: winner must be oracle-legal",
            scop.name
        );
        let default_score = outcome.candidates[0].1.expect("pluto schedules");
        assert_eq!(outcome.candidates[0].0, "pluto");
        assert!(
            outcome.score >= default_score,
            "{}: tuned {} must match or beat default {}",
            scop.name,
            outcome.score,
            default_score
        );
    }
}

#[test]
fn explore_is_bit_deterministic_across_thread_counts() {
    let scop = jacobi_1d();
    let machine = MachineModel::default();
    let outcome_of = |threads: usize| {
        tune::explore(
            &scop,
            &machine,
            &TuneBudget {
                threads,
                ..TuneBudget::default()
            },
        )
        .expect("jacobi schedules")
    };
    let one = outcome_of(1);
    for threads in [2, 3, 7] {
        let many = outcome_of(threads);
        assert_eq!(one.winner.name, many.winner.name);
        assert_eq!(
            one.winner.schedule, many.winner.schedule,
            "{threads} threads"
        );
        assert_eq!(one.score, many.score);
        assert_eq!(one.features, many.features);
        assert_eq!(one.candidates, many.candidates);
    }
}

#[test]
fn for_machine_preset_schedules_and_certifies() {
    let scop = jacobi_1d();
    let machine = MachineModel::default();
    let sched = schedule(&scop, &presets::for_machine(&machine)).unwrap();
    let deps = analyze(&scop);
    assert!(deps.iter().all(|d| {
        polytops_deps::schedule_respects_dependence(
            d,
            sched.stmt(d.src).rows(),
            sched.stmt(d.dst).rows(),
        )
    }));
    let marks = sched.tree().expect("post-processing sets a tree").marks();
    assert!(
        marks
            .iter()
            .any(|m| matches!(m, polytops_ir::MarkKind::Tile(_))),
        "machine preset tiles"
    );
}
