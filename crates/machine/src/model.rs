//! The static performance model: machine-aware scoring of schedules.
//!
//! PolyTOPS's reconfiguration loop (paper Fig. 1) needs a way to *rank*
//! the schedules different configurations produce without executing
//! them — the paper routes tile sizes, vectorization and parallelization
//! profitability through exactly such "external decisions". This module
//! implements the two halves:
//!
//! 1. [`extract_features`] reads a scheduled SCoP — the schedule rows,
//!    band/parallel metadata, the schedule *tree* (tiling, wavefront
//!    and vectorization live there as marks and per-member coincidence
//!    flags), and the dependence set — into a machine-*independent*
//!    [`ScheduleFeatures`] vector:
//!    outermost parallelism, per-dependence reuse distances (iterations
//!    between a value's definition and its reuse under the schedule),
//!    memory-stream strides against the innermost executed loop, tile
//!    footprints, vectorizable statements and estimated dynamic work.
//! 2. [`estimate_cycles`] folds a feature vector with a
//!    [`MachineModel`] into an estimated cycle count; [`model_score`]
//!    negates it into the "higher is better" orientation the scenario
//!    engine's `winner_by` expects.
//!
//! # Extents and strides
//!
//! Trip counts are *inferred from the statement domains*: every
//! parameter is fixed at `param_estimate` and the exact integer min/max
//! of each schedule row over the domain is computed with the ILP solver
//! ([`iterator_extents`]), so a loop `for i in 1..N-1` contributes
//! `N - 2` iterations, not a uniform guess. Memory streams are priced
//! by their *linearized element stride* against the innermost executed
//! loop ([`access_stride`] / [`stream_stride`]): a transposed access
//! like `A[j][i]` stepped by `j` pays a full row length per iteration
//! instead of riding cache-line amortization.
//!
//! # Determinism
//!
//! Everything here is exact integer arithmetic (saturating `i128`
//! intermediates clamped into `i64`, exact branch-and-bound ILP for the
//! extents): the same schedule and machine always produce bit-identical
//! features and scores, on any thread count — the property the
//! autotuner's winner selection is built on.

use polytops_deps::{strongly_satisfies, Dependence};
use polytops_ir::{Access, AffineExpr, MarkKind, Schedule, Scop, Statement, StmtId, TreeNode};
use polytops_math::{ilp_minimize, IlpOutcome};

use crate::MachineModel;

/// Tiling facts read off one `Mark::Tile` nest of the schedule tree:
/// the tile band over the point band, flattened back into the
/// per-dimension shape the trip/footprint estimates work in.
struct TileFact {
    /// Flat scheduling dimension of each point-band member, in member
    /// order (permuted from ascending when post-processing rotated a
    /// coincident member innermost).
    point_dims: Vec<usize>,
    /// Tile size of each member, aligned with `point_dims`.
    sizes: Vec<i64>,
    /// Coincidence flag of each tile-band member.
    tile_parallel: Vec<bool>,
    /// Coincidence flag of each point-band member.
    point_parallel: Vec<bool>,
}

/// Skips over any run of marks (wavefront, vectorize) to the node they
/// annotate.
fn peel_marks(mut node: &TreeNode) -> &TreeNode {
    while let TreeNode::Mark { child, .. } = node {
        node = child;
    }
    node
}

/// Collects one [`TileFact`] per tile nest (a `Mark::Tile` whose
/// subtree is a tile band over a point band of matching width) in
/// depth-first order, i.e. outermost nest first.
fn collect_tile_facts(node: &TreeNode, out: &mut Vec<TileFact>) {
    if let TreeNode::Mark {
        kind: MarkKind::Tile(sizes),
        child,
    } = node
    {
        if let TreeNode::Band {
            members: tiles,
            child: inner,
            ..
        } = peel_marks(child)
        {
            if let TreeNode::Band {
                members: points,
                child: rest,
                ..
            } = peel_marks(inner)
            {
                if points.len() == sizes.len() && tiles.len() == sizes.len() {
                    out.push(TileFact {
                        point_dims: points.iter().map(|m| m.source_dim()).collect(),
                        sizes: sizes.clone(),
                        tile_parallel: tiles.iter().map(|m| m.coincident).collect(),
                        point_parallel: points.iter().map(|m| m.coincident).collect(),
                    });
                }
                collect_tile_facts(rest, out);
                return;
            }
        }
    }
    match node {
        TreeNode::Band { child, .. }
        | TreeNode::Filter { child, .. }
        | TreeNode::Mark { child, .. } => collect_tile_facts(child, out),
        TreeNode::Sequence(children) => {
            for c in children {
                collect_tile_facts(c, out);
            }
        }
        TreeNode::Leaf => {}
    }
}

/// Clamp for every estimated quantity: large enough to order any real
/// kernel, small enough that sums of several terms never overflow `i64`.
const CLAMP: i128 = i64::MAX as i128 / 8;

fn clamp(v: i128) -> i64 {
    v.clamp(-CLAMP, CLAMP) as i64
}

/// `⌈a / b⌉` for non-negative `a` and positive `b` (the `i128`
/// `div_ceil` is unstable on this toolchain).
fn ceil_div(a: i128, b: i128) -> i128 {
    (a + b - 1) / b
}

/// Largest parameter estimate the extent ILP is asked to reason about.
/// Beyond it (a stress-test regime, not a tuning one) extent inference
/// falls back to the estimate itself so solver arithmetic stays in
/// range; every result is still exact saturating integer math.
const EXTENT_ILP_CAP: i64 = 1 << 20;

/// Exact extent (`max − min + 1`, at least 1) of an affine expression
/// over a statement's domain with every parameter fixed at
/// `param_estimate`, by integer min/max ILP. `None` when the domain is
/// empty/unbounded under that fixing or the estimate exceeds
/// [`EXTENT_ILP_CAP`].
fn expr_extent(
    stmt: &Statement,
    nparams: usize,
    expr: &AffineExpr,
    param_estimate: i64,
) -> Option<i64> {
    if param_estimate > EXTENT_ILP_CAP {
        return None;
    }
    let depth = stmt.depth();
    let mut sys = stmt.domain.clone();
    let nv = sys.num_vars();
    for j in 0..nparams {
        let mut row = vec![0i64; nv + 1];
        row[depth + j] = 1;
        row[nv] = -param_estimate;
        sys.add_eq(row);
    }
    let mut obj = vec![0i64; nv];
    obj[..depth].copy_from_slice(expr.iter_coeffs());
    obj[depth..depth + nparams.min(expr.nparams())]
        .copy_from_slice(&expr.param_coeffs()[..nparams.min(expr.nparams())]);
    let lo = match ilp_minimize(&sys, &obj) {
        IlpOutcome::Optimal { value, .. } => value,
        _ => return None,
    };
    for v in obj.iter_mut() {
        *v = -*v;
    }
    let hi = match ilp_minimize(&sys, &obj) {
        IlpOutcome::Optimal { value, .. } => -value,
        _ => return None,
    };
    Some((hi - lo + 1).max(1))
}

/// Per-iterator extents of a statement's domain with every parameter
/// fixed at `param_estimate`: entry `k` is the exact number of distinct
/// values iterator `k` takes (`max − min + 1` over the domain), the
/// trip count of the corresponding source loop. Falls back to
/// `param_estimate` per iterator when the ILP cannot bound the domain.
pub fn iterator_extents(stmt: &Statement, nparams: usize, param_estimate: i64) -> Vec<i64> {
    let est = param_estimate.max(2);
    let depth = stmt.depth();
    (0..depth)
        .map(|k| {
            let expr = AffineExpr::iter(depth, nparams, k);
            expr_extent(stmt, nparams, &expr, est).unwrap_or(est)
        })
        .collect()
}

/// Evaluates an array-dimension expression (affine in the parameters)
/// with every parameter fixed at `est`, saturating, clamped to ≥ 1.
fn eval_dim(expr: &AffineExpr, est: i64) -> i128 {
    let mut v = i128::from(expr.constant_term());
    // Array dims carry no iterators by construction; treat any stray
    // iterator coefficient like a parameter, conservatively.
    for &c in expr.param_coeffs().iter().chain(expr.iter_coeffs()) {
        v = (v + i128::from(c) * i128::from(est)).min(CLAMP);
    }
    v.clamp(1, CLAMP)
}

/// Linearized element stride of `access` per unit step of iterator
/// `iter`, with array extents evaluated at `param_estimate`: the sum
/// over subscripts of the iterator's coefficient times the row-major
/// size of the inner array dimensions. `Some(0)` means the access does
/// not move with the iterator (temporal reuse); `±1` is a contiguous
/// stream; a transposed access like `A[j][i]` stepped by `j` yields the
/// row length. `None` when a non-affine (`⌊·/k⌋` / `mod`) subscript
/// involves the iterator — the stride is not a constant.
pub fn access_stride(
    scop: &Scop,
    stmt: &Statement,
    access: &Access,
    iter: usize,
    param_estimate: i64,
) -> Option<i64> {
    let est = param_estimate.clamp(2, EXTENT_ILP_CAP);
    let info = scop.array(access.array);
    let _ = stmt; // the access's iterator space is the statement's
    let mut stride: i128 = 0;
    let mut inner: i128 = 1;
    for (k, sub) in access.subscripts.iter().enumerate().rev() {
        let c = sub.expr().iter_coeffs().get(iter).copied().unwrap_or(0);
        if c != 0 {
            if !sub.is_affine() {
                return None;
            }
            stride = (stride + i128::from(c) * inner).clamp(-CLAMP, CLAMP);
        }
        let dim = info.dims.get(k).map_or(1, |e| eval_dim(e, est));
        inner = (inner * dim).min(CLAMP);
    }
    Some(clamp(stride))
}

/// The innermost *executed* scheduling dimension of statement `s`: the
/// last flat dimension with a non-constant row — or, when that
/// dimension sits in a tiled band, the source dimension of the
/// innermost point-band member (post-processing may rotate a coincident
/// member innermost).
fn innermost_executed_dim(sched: &Schedule, facts: &[TileFact], s: StmtId) -> Option<usize> {
    let ss = sched.stmt(s);
    let flat = (0..sched.dims()).rev().find(|&d| !ss.row_is_constant(d))?;
    for f in facts {
        if f.point_dims.contains(&flat) {
            // Innermost executed member of the nest whose rows move `s`.
            return f
                .point_dims
                .iter()
                .rev()
                .find(|&&d| !ss.row_is_constant(d))
                .copied()
                .or(Some(flat));
        }
    }
    Some(flat)
}

/// Element stride of `access` against the innermost executed loop of
/// statement `s` under `sched`: the stepping iterator is read off the
/// innermost executed row (the row's single source iterator in the
/// common unit-row case; the largest-coefficient iterator as a
/// documented approximation for skewed rows), and the stride is
/// [`access_stride`] for that iterator. `None` when the stride is not a
/// constant (non-affine subscripts) or the statement has no loops.
pub fn stream_stride(
    scop: &Scop,
    sched: &Schedule,
    s: StmtId,
    access: &Access,
    param_estimate: i64,
) -> Option<i64> {
    let facts: Vec<TileFact> = match sched.tree() {
        Some(tree) => {
            let mut v = Vec::new();
            collect_tile_facts(&tree.root, &mut v);
            v
        }
        None => Vec::new(),
    };
    let d = innermost_executed_dim(sched, &facts, s)?;
    let row = sched.stmt(s).row_expr(d);
    // The iterator that advances when the innermost loop steps: the
    // largest-|coefficient| one, ties toward the innermost source
    // iterator.
    let iter = row
        .iter_coeffs()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != 0)
        .max_by_key(|&(k, &c)| (c.abs(), k))
        .map(|(k, _)| k)?;
    access_stride(scop, scop.stmt(s), access, iter, param_estimate)
}

/// The machine-independent feature vector of one scheduled SCoP.
///
/// Produced by [`extract_features`]; consumed by [`estimate_cycles`].
/// All counts are estimates with every parameter fixed at the
/// extraction's `param_estimate` (see the module docs) and are exact
/// integers, so feature vectors are bit-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFeatures {
    /// Scheduling dimensions (including constant splitting levels).
    pub dims: usize,
    /// Statements in the SCoP.
    pub num_stmts: usize,
    /// Whether the outermost *executed* loop is parallel: the tile loop
    /// of the first tiled band when the outermost loop dimension is
    /// tiled, the point loop otherwise. Coarse-grain parallelism — one
    /// fork/join for the whole SCoP.
    pub outer_parallel: bool,
    /// Parallel scheduling dimensions (point loops).
    pub parallel_dims: usize,
    /// Width of the widest permutable band (tilability).
    pub max_band_width: usize,
    /// Statements with a dimension marked for vectorization.
    pub vectorized_stmts: usize,
    /// Estimated dynamic arithmetic operations: Σ per statement of
    /// `compute_ops × ∏ inferred iterator extents`.
    pub total_ops: i64,
    /// Estimated dynamic statement instances: Σ ∏ inferred extents.
    pub total_instances: i64,
    /// Whether post-processing recorded any tiled band.
    pub tiled: bool,
    /// Estimated bytes a tile touches (first tiled band: distinct
    /// arrays × element size × ∏ tile sizes) — or, untiled, the whole
    /// working set (Σ arrays element size × ∏ declared extents at the
    /// parameter estimate).
    pub footprint_bytes: i64,
    /// Per scheduling dimension: the inferred trip count — the exact
    /// max − min + 1 of the dimension's rows over the statement domains
    /// with parameters fixed at the estimate (max across statements),
    /// capped at the tile size for tiled point loops, 1 for constant
    /// splitting levels.
    pub trip_counts: Vec<i64>,
    /// Per dependence: estimated iterations executed between the source
    /// access and its dependent reuse — the schedule-induced reuse
    /// distance. A dependence carried at dimension `c` waits for one
    /// iteration of `c`, i.e. for every loop nested inside `c` to run;
    /// tiling caps those inner trip counts at the tile sizes, which is
    /// exactly how it improves locality in this model.
    pub reuse_distances: Vec<i64>,
    /// Per dependence: the absolute element stride of the destination
    /// statement's accesses to the dependence's array against its
    /// innermost executed loop (worst across those accesses): 0 is
    /// loop-invariant, 1 a contiguous stream, the row length a
    /// transposed walk; `-1` when no constant stride exists (non-affine
    /// subscripts).
    pub stream_strides: Vec<i64>,
    /// Dominant (maximum) element size of the SCoP's arrays, bytes.
    pub element_size: u32,
    /// Synchronization events: iterations of the sequential *executed*
    /// loops — tile loops of tiled bands included — enclosing the first
    /// parallel loop (one barrier each when parallelism is inner), or 1
    /// when the outermost executed loop itself is parallel (a single
    /// fork/join), or 0 without any parallelism.
    pub sync_events: i64,
}

/// Whether schedule dimension `d` is a loop level for some statement.
fn is_loop_dim(sched: &Schedule, d: usize) -> bool {
    (0..sched.num_statements()).any(|s| !sched.stmt(StmtId(s)).row_is_constant(d))
}

/// Extracts the feature vector of `sched` over `scop`.
///
/// `deps` must be the dependence analysis of `scop` (the reuse features
/// walk it); `param_estimate` is the value every symbolic parameter is
/// fixed at while inferring loop extents from the statement domains
/// (the scheduler's configs carry the same knob as `parameter_estimate`,
/// default 64).
///
/// # Panics
///
/// Panics if `sched` is not a schedule of `scop` (statement count or
/// row arity mismatch).
pub fn extract_features(
    scop: &Scop,
    sched: &Schedule,
    deps: &[Dependence],
    param_estimate: i64,
) -> ScheduleFeatures {
    assert_eq!(
        sched.num_statements(),
        scop.statements.len(),
        "schedule/scop statement count"
    );
    let dims = sched.dims();
    let est = param_estimate.max(2);
    let np = scop.nparams();

    // Tiling and vectorization facts live on the schedule tree; a
    // schedule that never went through post-processing has no tree and
    // therefore neither transformation.
    let facts: Vec<TileFact> = match sched.tree() {
        Some(tree) => {
            let mut v = Vec::new();
            collect_tile_facts(&tree.root, &mut v);
            v
        }
        None => Vec::new(),
    };

    // Exact per-iterator extents of every statement domain (params
    // fixed at the estimate): the basis of every trip-count product.
    let extents: Vec<Vec<i64>> = scop
        .statements
        .iter()
        .map(|s| iterator_extents(s, np, est))
        .collect();

    // Per-dimension trip counts, inferred from the domains: the extent
    // of the dimension's row over each statement's domain (a unit row
    // reuses the iterator extent; a skewed row gets its own exact
    // min/max), max across statements; 1 for constant levels.
    let raw_trips: Vec<i64> = (0..dims)
        .map(|d| {
            let mut trip = 1i64;
            for (idx, s) in scop.statements.iter().enumerate() {
                let ss = sched.stmt(StmtId(idx));
                if ss.row_is_constant(d) {
                    continue;
                }
                let row = ss.row_expr(d);
                let unit = {
                    let nz: Vec<(usize, i64)> = row
                        .iter_coeffs()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c != 0)
                        .map(|(k, &c)| (k, c))
                        .collect();
                    match nz.as_slice() {
                        [(k, c)] if c.abs() == 1 => Some(*k),
                        _ => None,
                    }
                };
                let e = match unit {
                    Some(k) => extents[idx][k],
                    None => expr_extent(s, np, &row, est).unwrap_or(est),
                };
                trip = trip.max(e);
            }
            trip
        })
        .collect();

    // Tile caps: a tiled point loop runs at most its tile size.
    let mut trips = raw_trips.clone();
    for f in &facts {
        for (&d, &size) in f.point_dims.iter().zip(&f.sizes) {
            trips[d] = trips[d].min(size.max(1));
        }
    }

    // A tile fact covers a contiguous run of flat dimensions (possibly
    // permuted within the run by the innermost-coincident rotation);
    // index it by the run's first dimension for the executed-loop walk.
    let mut fact_at: Vec<Option<&TileFact>> = vec![None; dims];
    for f in &facts {
        if let (Some(&lo), Some(&hi)) = (f.point_dims.iter().min(), f.point_dims.iter().max()) {
            if hi - lo + 1 == f.point_dims.len() && hi < dims {
                fact_at[lo] = Some(f);
            }
        }
    }

    // The *executed* loop sequence, outermost first: a tiled band runs
    // its tile loops (trip = ⌈extent / size⌉, parallelism from the
    // stricter tile-member coincidence flags) before its point loops,
    // so outer parallelism and barrier counts must both be read off
    // this sequence, not off the scheduling dimensions alone. Constant
    // (splitting) levels contribute trip-1 sequential entries, harmless
    // in every product.
    let mut executed: Vec<(bool, i64)> = Vec::with_capacity(2 * dims);
    let mut d = 0;
    while d < dims {
        if let Some(f) = fact_at[d] {
            for (k, (&p, &size)) in f.point_dims.iter().zip(&f.sizes).enumerate() {
                let tile_trip = clamp(ceil_div(
                    i128::from(raw_trips[p].max(1)),
                    i128::from(size.max(1)),
                ))
                .max(1);
                executed.push((f.tile_parallel[k], tile_trip));
            }
            for (k, &p) in f.point_dims.iter().enumerate() {
                executed.push((f.point_parallel[k] && is_loop_dim(sched, p), trips[p]));
            }
            d += f.point_dims.len();
        } else {
            executed.push((sched.parallel()[d] && is_loop_dim(sched, d), trips[d]));
            d += 1;
        }
    }
    let first_executed_loop = executed.iter().position(|&(_, trip)| trip > 1);
    let outer_parallel = first_executed_loop.is_some_and(|i| executed[i].0);
    let parallel_dims = sched.parallel().iter().filter(|&&p| p).count();
    let max_band_width = sched
        .band_ranges()
        .into_iter()
        .map(|(a, b)| b - a)
        .max()
        .unwrap_or(0);
    let vectorized_stmts = {
        let mut marked: Vec<usize> = sched
            .tree()
            .map(|tree| {
                tree.marks()
                    .into_iter()
                    .filter_map(|m| match m {
                        MarkKind::Vectorize(stmts) => Some(stmts.iter().copied()),
                        _ => None,
                    })
                    .flatten()
                    .collect()
            })
            .unwrap_or_default();
        marked.sort_unstable();
        marked.dedup();
        marked.len()
    };

    // Dynamic work: the product of each statement's own inferred
    // iterator extents — schedule-independent, domain-exact.
    let mut total_ops: i128 = 0;
    let mut total_instances: i128 = 0;
    for (idx, s) in scop.statements.iter().enumerate() {
        let inst = extents[idx]
            .iter()
            .fold(1i128, |acc, &e| (acc * i128::from(e.max(1))).min(CLAMP));
        total_instances = (total_instances + inst).min(CLAMP);
        total_ops = (total_ops + inst * i128::from(s.compute_ops.max(1))).min(CLAMP);
    }

    let element_size = scop
        .arrays
        .iter()
        .map(|a| a.element_size)
        .max()
        .unwrap_or(8)
        .max(1);
    let tiled = !facts.is_empty();
    let footprint_bytes = if let Some(f) = facts.first() {
        let tile_iters = f
            .sizes
            .iter()
            .fold(1i128, |acc, &s| (acc * i128::from(s.max(1))).min(CLAMP));
        clamp(i128::from(scop.arrays.len().max(1) as i64) * i128::from(element_size) * tile_iters)
    } else {
        // Untiled working set: each array's declared extents evaluated
        // at the parameter estimate.
        let mut bytes: i128 = 0;
        for a in &scop.arrays {
            let cells = a.dims.iter().fold(1i128, |acc, e| {
                (acc * eval_dim(e, est.min(EXTENT_ILP_CAP))).min(CLAMP)
            });
            bytes = (bytes + i128::from(a.element_size.max(1)) * cells).min(CLAMP);
        }
        clamp(bytes)
    };

    // Reuse distance per dependence: iterations of everything nested
    // inside the carrying dimension (1 when carried innermost or
    // loop-independent — the reuse is immediate).
    let reuse_distances: Vec<i64> = deps
        .iter()
        .map(|dep| {
            let carry = (0..dims).find(|&d| {
                strongly_satisfies(
                    dep,
                    &sched.stmt(dep.src).rows()[d],
                    &sched.stmt(dep.dst).rows()[d],
                )
            });
            let first_inner = carry.map_or(dims, |c| c + 1);
            let inner: i128 = (first_inner..dims)
                .map(|d| i128::from(trips[d]))
                .fold(1, |acc, t| (acc * t).min(CLAMP));
            clamp(inner)
        })
        .collect();

    // Stream stride per dependence: the worst (largest-|stride|)
    // constant stride among the destination statement's accesses to the
    // dependence's array, against its innermost executed loop; -1 when
    // any of those accesses has no constant stride.
    let stream_strides: Vec<i64> = deps
        .iter()
        .map(|dep| {
            let stmt = scop.stmt(dep.dst);
            let mut worst: i64 = 0;
            for acc in stmt.accesses.iter().filter(|a| a.array == dep.array) {
                match stream_stride(scop, sched, dep.dst, acc, est) {
                    Some(s) => worst = worst.max(s.saturating_abs()),
                    None => return -1,
                }
            }
            worst
        })
        .collect();

    // Synchronization: one fork/join when the outermost executed loop
    // is parallel; otherwise one barrier per iteration of the
    // sequential executed loops *enclosing* the first parallel one —
    // tile loops included, so a sequential tile loop over a parallel
    // point loop is charged per tile step, not as a single fork/join.
    let sync_events = match executed.iter().position(|&(parallel, _)| parallel) {
        _ if outer_parallel => 1,
        None => 0,
        Some(first_parallel) => clamp(
            executed[..first_parallel]
                .iter()
                .map(|&(_, trip)| i128::from(trip))
                .fold(1, |acc, t| (acc * t).min(CLAMP)),
        ),
    };

    ScheduleFeatures {
        dims,
        num_stmts: scop.statements.len(),
        outer_parallel,
        parallel_dims,
        max_band_width,
        vectorized_stmts,
        total_ops: clamp(total_ops),
        total_instances: clamp(total_instances),
        tiled,
        footprint_bytes,
        trip_counts: trips,
        reuse_distances,
        stream_strides,
        element_size,
        sync_events,
    }
}

/// Estimated execution cycles of a scheduled SCoP on `machine`.
///
/// The formula, all saturating integer arithmetic:
///
/// ```text
/// compute = total_ops, with the vectorized fraction of statements
///           divided by the SIMD lane count
/// compute /= num_cores          when any dimension is parallel
/// sync    = sync_events × sync_cycles
/// memory  = Σ over spilled streams of
///           stride_factor × total_instances × miss_penalty_cycles
///                         / elements_per_line
/// cycles  = compute + sync + memory
/// ```
///
/// A dependence *spills* when its reuse distance times the element size
/// exceeds the cache capacity (the value is evicted before its reuse);
/// an overflowing tile (`footprint_bytes > cache_bytes` while tiled)
/// counts as one more spilled unit-stride stream. `stride_factor` is
/// the stream's element stride clamped into `[1, elements_per_line]`:
/// a unit-stride stream amortizes its misses over a cache line exactly
/// as before, while a transposed or unknown-stride stream
/// (`stream_strides[e]` at least the line, or `-1`) pays the full miss
/// penalty per instance.
///
/// The result is strictly positive, finite, and — for a fixed feature
/// vector — **monotonically non-increasing in
/// [`num_cores`](MachineModel::num_cores)** whenever the schedule has
/// any parallelism (only the compute term depends on the core count).
pub fn estimate_cycles(machine: &MachineModel, f: &ScheduleFeatures) -> i64 {
    let ops = i128::from(f.total_ops.max(1));
    let lanes = i128::from(machine.vector_lanes(f.element_size).max(1));
    let mut compute = if f.num_stmts == 0 {
        ops
    } else {
        // Scale the vectorized fraction of the work by the lane count.
        let vec_ops = ops * i128::from(f.vectorized_stmts as i64) / i128::from(f.num_stmts as i64);
        (ops - vec_ops) + ceil_div(vec_ops, lanes)
    };
    if f.outer_parallel || f.parallel_dims > 0 {
        compute = ceil_div(compute, i128::from(machine.num_cores.max(1)));
    }

    let sync = i128::from(f.sync_events) * i128::from(machine.sync_cycles);

    let cache = i128::from(machine.cache_bytes.max(1));
    let line = i128::from(machine.elements_per_line(f.element_size).max(1));
    let miss_unit = i128::from(f.total_instances.max(1)) * i128::from(machine.miss_penalty_cycles);
    let mut memory: i128 = 0;
    for (e, &r) in f.reuse_distances.iter().enumerate() {
        if i128::from(r) * i128::from(f.element_size) <= cache {
            continue;
        }
        let stride = f.stream_strides.get(e).copied().unwrap_or(1);
        let factor = if stride < 0 {
            line // unknown stride: assume every instance misses
        } else {
            i128::from(stride).clamp(1, line)
        };
        memory = (memory + miss_unit * factor / line).min(CLAMP);
    }
    if f.tiled && i128::from(f.footprint_bytes) > cache {
        memory = (memory + miss_unit / line).min(CLAMP);
    }

    clamp((compute + sync + memory).max(1))
}

/// The model as a scenario score: negated [`estimate_cycles`], so that
/// "higher is better" matches `winner_by` and ties between equal-cost
/// schedules resolve toward the earlier candidate.
pub fn model_score(machine: &MachineModel, f: &ScheduleFeatures) -> i64 {
    -estimate_cycles(machine, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::{Aff, BandMember, MemberTerm, ScheduleTree, ScopBuilder, StmtSchedule};

    /// `for t for i A[i] = A[i-1] + A[i+1];` — the stencil under test.
    fn stencil() -> Scop {
        let mut b = ScopBuilder::new("stencil");
        let t = b.param("T");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("t", Aff::val(0), t - 1);
        b.open_loop("i", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .read(a, &[Aff::var("i") + 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    /// A single-term band member `⌊row·x / div⌋` of the one-statement
    /// stencil, whose flat rows are over `(t, i, T, N, 1)`.
    fn member(d: usize, div: i64, coincident: bool) -> BandMember {
        let mut row = vec![0i64; 5];
        row[d] = 1;
        BandMember {
            terms: vec![MemberTerm {
                rows: vec![row],
                div,
                source_dim: d,
            }],
            coincident,
        }
    }

    /// The tree of the identity schedule tiled with `sizes`: a
    /// `Mark::Tile` over a tile band over the point band.
    fn tiled_tree(
        sizes: Vec<i64>,
        tile_parallel: Vec<bool>,
        point_parallel: Vec<bool>,
    ) -> ScheduleTree {
        let n = sizes.len();
        let tiles = (0..n)
            .map(|d| member(d, sizes[d], tile_parallel[d]))
            .collect();
        let points = (0..n).map(|d| member(d, 1, point_parallel[d])).collect();
        ScheduleTree {
            nstmts: 1,
            root: TreeNode::Mark {
                kind: MarkKind::Tile(sizes),
                child: TreeNode::Band {
                    members: tiles,
                    permutable: true,
                    child: TreeNode::Band {
                        members: points,
                        permutable: true,
                        child: TreeNode::Leaf.boxed(),
                    }
                    .boxed(),
                }
                .boxed(),
            },
        }
    }

    /// The identity (t, i) schedule of the stencil, one permutable band.
    fn identity_schedule(tiled: Option<Vec<i64>>) -> Schedule {
        let mut ss = StmtSchedule::new(2, 2);
        ss.push_row(vec![1, 0, 0, 0, 0]);
        ss.push_row(vec![0, 1, 0, 0, 0]);
        let mut sched = Schedule::from_parts(vec![ss], vec![0, 0], vec![false, false]);
        if let Some(sizes) = tiled {
            let n = sizes.len();
            sched.set_tree(tiled_tree(sizes, vec![false; n], vec![false; n]));
        }
        sched
    }

    #[test]
    fn extents_are_inferred_from_the_domain() {
        let scop = stencil();
        // t in [0, T-1] runs est times; i in [1, N-2] runs est-2 times.
        let ext = iterator_extents(&scop.statements[0], scop.nparams(), 64);
        assert_eq!(ext, vec![64, 62]);

        let deps = polytops_deps::analyze(&scop);
        let f = extract_features(&scop, &identity_schedule(None), &deps, 64);
        assert_eq!(f.trip_counts, vec![64, 62]);
        assert_eq!(f.total_instances, 64 * 62, "instances use real bounds");
    }

    #[test]
    fn strides_follow_the_innermost_executed_loop() {
        let scop = stencil();
        let sched = identity_schedule(None);
        let stmt = &scop.statements[0];
        // Every access of A[i±k] is stride 1 in i, stride 0 in t.
        for acc in &stmt.accesses {
            assert_eq!(access_stride(&scop, stmt, acc, 1, 64), Some(1));
            assert_eq!(access_stride(&scop, stmt, acc, 0, 64), Some(0));
            assert_eq!(stream_stride(&scop, &sched, StmtId(0), acc, 64), Some(1));
        }
        let deps = polytops_deps::analyze(&scop);
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(f.stream_strides.iter().all(|&s| s == 1), "{f:?}");
    }

    #[test]
    fn tiled_stencil_has_bounded_footprint_and_reuse() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        assert!(!deps.is_empty());

        let plain = extract_features(&scop, &identity_schedule(None), &deps, 1024);
        let tiled = extract_features(&scop, &identity_schedule(Some(vec![16, 16])), &deps, 1024);

        // Untiled: the footprint is the whole (estimated) array; tiled:
        // one 16×16 tile of it, independent of the parameter estimate.
        assert_eq!(tiled.footprint_bytes, 8 * 16 * 16);
        assert!(plain.footprint_bytes > tiled.footprint_bytes);
        // Time-carried reuse waits a full row sweep untiled (the i
        // loop's inferred 1022 iterations) but at most a tile row (16)
        // tiled.
        assert_eq!(plain.reuse_distances.iter().max(), Some(&1022));
        assert!(tiled.reuse_distances.iter().all(|&r| r <= 16));

        // On a machine whose cache holds a tile but not a row sweep,
        // the model prefers the tiled schedule.
        let small_cache = MachineModel {
            cache_bytes: 4 << 10,
            ..MachineModel::default()
        };
        assert!(
            estimate_cycles(&small_cache, &tiled) < estimate_cycles(&small_cache, &plain),
            "tiled {tiled:?} must beat plain {plain:?}"
        );
    }

    #[test]
    fn outer_parallelism_is_read_from_tile_or_point_flags() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let mut sched = identity_schedule(None);
        assert!(!extract_features(&scop, &sched, &deps, 64).outer_parallel);

        // Point flag on the outermost dimension.
        sched.parallel_mut()[0] = true;
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(f.outer_parallel);
        assert_eq!(f.sync_events, 1);

        // Tiled with a sequential tile loop: the tile loop is the
        // outermost executed loop, so outer parallelism is *its*
        // coincidence flag even while the point flag stays true.
        sched.set_tree(tiled_tree(vec![8, 8], vec![false, true], vec![true, false]));
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(!f.outer_parallel);
        assert!(f.parallel_dims > 0);
    }

    #[test]
    fn inner_parallelism_pays_barriers() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let mut sched = identity_schedule(None);
        sched.parallel_mut()[1] = true; // parallel inner, sequential outer
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(!f.outer_parallel);
        assert_eq!(f.sync_events, 64, "one barrier per outer iteration");

        let m = MachineModel::default();
        let mut outer = f.clone();
        outer.outer_parallel = true;
        outer.sync_events = 1;
        assert!(
            estimate_cycles(&m, &outer) < estimate_cycles(&m, &f),
            "outer parallelism must beat inner at equal work"
        );
    }

    #[test]
    fn vectorization_reduces_compute() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let mut sched = identity_schedule(None);
        let base = extract_features(&scop, &sched, &deps, 64);
        let inner = sched.tree_or_lowered();
        sched.set_tree(ScheduleTree {
            nstmts: inner.nstmts,
            root: TreeNode::Mark {
                kind: MarkKind::Vectorize(vec![0]),
                child: inner.root.boxed(),
            },
        });
        let vec = extract_features(&scop, &sched, &deps, 64);
        assert_eq!(vec.vectorized_stmts, 1);
        let m = MachineModel::default();
        assert!(estimate_cycles(&m, &vec) < estimate_cycles(&m, &base));
    }

    #[test]
    fn transposed_streams_pay_full_misses() {
        // for i for j: B[j][i] = A[i][j]; under the identity schedule
        // the B walk is a column sweep — stride N — while A streams.
        let mut b = ScopBuilder::new("transpose");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        let bb = b.array("B", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i"), Aff::var("j")])
            .write(bb, &[Aff::var("j"), Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let stmt = &scop.statements[0];
        let read = &stmt.accesses[0];
        let write = stmt.accesses.iter().find(|a| a.array.0 == 1).unwrap();
        // Stepping j: A[i][j] is contiguous, B[j][i] jumps a whole row.
        assert_eq!(access_stride(&scop, stmt, read, 1, 64), Some(1));
        assert_eq!(access_stride(&scop, stmt, write, 1, 64), Some(64));

        // A spilled transposed stream must cost more than a contiguous
        // one at equal reuse.
        let m = MachineModel::default();
        let mk = |stride: i64| ScheduleFeatures {
            dims: 2,
            num_stmts: 1,
            outer_parallel: false,
            parallel_dims: 0,
            max_band_width: 2,
            vectorized_stmts: 0,
            total_ops: 1 << 20,
            total_instances: 1 << 20,
            tiled: false,
            footprint_bytes: 1 << 24,
            trip_counts: vec![1 << 10, 1 << 10],
            reuse_distances: vec![i64::MAX / 16],
            stream_strides: vec![stride],
            element_size: 8,
            sync_events: 0,
        };
        assert!(
            estimate_cycles(&m, &mk(4096)) > estimate_cycles(&m, &mk(1)),
            "a transposed spill must out-cost a contiguous one"
        );
        assert_eq!(
            estimate_cycles(&m, &mk(-1)),
            estimate_cycles(&m, &mk(i64::MAX / 4)),
            "unknown stride is priced as line-breaking"
        );
    }

    #[test]
    fn scores_are_finite_under_extreme_estimates() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let sched = identity_schedule(Some(vec![1 << 20, 1 << 20]));
        let f = extract_features(&scop, &sched, &deps, i64::MAX / 2);
        let m = MachineModel::default();
        let cycles = estimate_cycles(&m, &f);
        assert!(cycles > 0);
        assert_eq!(model_score(&m, &f), -cycles);
    }
}
