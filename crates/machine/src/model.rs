//! The static performance model: machine-aware scoring of schedules.
//!
//! PolyTOPS's reconfiguration loop (paper Fig. 1) needs a way to *rank*
//! the schedules different configurations produce without executing
//! them — the paper routes tile sizes, vectorization and parallelization
//! profitability through exactly such "external decisions". This module
//! implements the two halves:
//!
//! 1. [`extract_features`] reads a scheduled SCoP — the schedule rows,
//!    band/parallel metadata, the schedule *tree* (tiling, wavefront
//!    and vectorization live there as marks and per-member coincidence
//!    flags), and the dependence set — into a machine-*independent*
//!    [`ScheduleFeatures`] vector:
//!    outermost parallelism, per-dependence reuse distances (iterations
//!    between a value's definition and its reuse under the schedule),
//!    tile footprints, vectorizable statements and estimated dynamic
//!    work.
//! 2. [`estimate_cycles`] folds a feature vector with a
//!    [`MachineModel`] into an estimated cycle count; [`model_score`]
//!    negates it into the "higher is better" orientation the scenario
//!    engine's `winner_by` expects.
//!
//! # Determinism
//!
//! Everything here is exact integer arithmetic (saturating `i128`
//! intermediates clamped into `i64`): the same schedule and machine
//! always produce bit-identical features and scores, on any thread
//! count — the property the autotuner's winner selection is built on.
//! Iteration counts are *estimates* (every parametric loop is assumed
//! to run [`extract_features`]'s `param_estimate` iterations), which is
//! all a static model needs to rank transformations of one kernel
//! against each other.

use polytops_deps::{strongly_satisfies, Dependence};
use polytops_ir::{MarkKind, Schedule, Scop, StmtId, TreeNode};

use crate::MachineModel;

/// Tiling facts read off one `Mark::Tile` nest of the schedule tree:
/// the tile band over the point band, flattened back into the
/// per-dimension shape the trip/footprint estimates work in.
struct TileFact {
    /// Flat scheduling dimension of each point-band member, in member
    /// order (permuted from ascending when post-processing rotated a
    /// coincident member innermost).
    point_dims: Vec<usize>,
    /// Tile size of each member, aligned with `point_dims`.
    sizes: Vec<i64>,
    /// Coincidence flag of each tile-band member.
    tile_parallel: Vec<bool>,
    /// Coincidence flag of each point-band member.
    point_parallel: Vec<bool>,
}

/// Skips over any run of marks (wavefront, vectorize) to the node they
/// annotate.
fn peel_marks(mut node: &TreeNode) -> &TreeNode {
    while let TreeNode::Mark { child, .. } = node {
        node = child;
    }
    node
}

/// Collects one [`TileFact`] per tile nest (a `Mark::Tile` whose
/// subtree is a tile band over a point band of matching width) in
/// depth-first order, i.e. outermost nest first.
fn collect_tile_facts(node: &TreeNode, out: &mut Vec<TileFact>) {
    if let TreeNode::Mark {
        kind: MarkKind::Tile(sizes),
        child,
    } = node
    {
        if let TreeNode::Band {
            members: tiles,
            child: inner,
            ..
        } = peel_marks(child)
        {
            if let TreeNode::Band {
                members: points,
                child: rest,
                ..
            } = peel_marks(inner)
            {
                if points.len() == sizes.len() && tiles.len() == sizes.len() {
                    out.push(TileFact {
                        point_dims: points.iter().map(|m| m.source_dim()).collect(),
                        sizes: sizes.clone(),
                        tile_parallel: tiles.iter().map(|m| m.coincident).collect(),
                        point_parallel: points.iter().map(|m| m.coincident).collect(),
                    });
                }
                collect_tile_facts(rest, out);
                return;
            }
        }
    }
    match node {
        TreeNode::Band { child, .. }
        | TreeNode::Filter { child, .. }
        | TreeNode::Mark { child, .. } => collect_tile_facts(child, out),
        TreeNode::Sequence(children) => {
            for c in children {
                collect_tile_facts(c, out);
            }
        }
        TreeNode::Leaf => {}
    }
}

/// Clamp for every estimated quantity: large enough to order any real
/// kernel, small enough that sums of several terms never overflow `i64`.
const CLAMP: i128 = i64::MAX as i128 / 8;

fn clamp(v: i128) -> i64 {
    v.clamp(-CLAMP, CLAMP) as i64
}

/// `⌈a / b⌉` for non-negative `a` and positive `b` (the `i128`
/// `div_ceil` is unstable on this toolchain).
fn ceil_div(a: i128, b: i128) -> i128 {
    (a + b - 1) / b
}

/// The machine-independent feature vector of one scheduled SCoP.
///
/// Produced by [`extract_features`]; consumed by [`estimate_cycles`].
/// All counts are estimates under the uniform trip-count assumption
/// (see the module docs) and are exact integers, so feature vectors are
/// bit-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFeatures {
    /// Scheduling dimensions (including constant splitting levels).
    pub dims: usize,
    /// Statements in the SCoP.
    pub num_stmts: usize,
    /// Whether the outermost *executed* loop is parallel: the tile loop
    /// of the first tiled band when the outermost loop dimension is
    /// tiled, the point loop otherwise. Coarse-grain parallelism — one
    /// fork/join for the whole SCoP.
    pub outer_parallel: bool,
    /// Parallel scheduling dimensions (point loops).
    pub parallel_dims: usize,
    /// Width of the widest permutable band (tilability).
    pub max_band_width: usize,
    /// Statements with a dimension marked for vectorization.
    pub vectorized_stmts: usize,
    /// Estimated dynamic arithmetic operations: Σ per statement of
    /// `compute_ops × param_estimate^depth`.
    pub total_ops: i64,
    /// Estimated dynamic statement instances: Σ `param_estimate^depth`.
    pub total_instances: i64,
    /// Whether post-processing recorded any tiled band.
    pub tiled: bool,
    /// Estimated bytes a tile touches (first tiled band: distinct
    /// arrays × element size × ∏ tile sizes) — or, untiled, the whole
    /// working set (Σ arrays element size × ∏ estimated extents).
    pub footprint_bytes: i64,
    /// Per dependence: estimated iterations executed between the source
    /// access and its dependent reuse — the schedule-induced reuse
    /// distance. A dependence carried at dimension `c` waits for one
    /// iteration of `c`, i.e. for every loop nested inside `c` to run;
    /// tiling caps those inner trip counts at the tile sizes, which is
    /// exactly how it improves locality in this model.
    pub reuse_distances: Vec<i64>,
    /// Dominant (maximum) element size of the SCoP's arrays, bytes.
    pub element_size: u32,
    /// Synchronization events: iterations of the sequential *executed*
    /// loops — tile loops of tiled bands included — enclosing the first
    /// parallel loop (one barrier each when parallelism is inner), or 1
    /// when the outermost executed loop itself is parallel (a single
    /// fork/join), or 0 without any parallelism.
    pub sync_events: i64,
}

/// Whether schedule dimension `d` is a loop level for some statement.
fn is_loop_dim(sched: &Schedule, d: usize) -> bool {
    (0..sched.num_statements()).any(|s| !sched.stmt(StmtId(s)).row_is_constant(d))
}

/// `base^exp` saturating into the model clamp.
fn pow_est(base: i64, exp: usize) -> i128 {
    let mut acc: i128 = 1;
    for _ in 0..exp {
        acc = (acc * i128::from(base.max(1))).min(CLAMP);
    }
    acc
}

/// Extracts the feature vector of `sched` over `scop`.
///
/// `deps` must be the dependence analysis of `scop` (the reuse features
/// walk it); `param_estimate` is the assumed trip count of every
/// parametric loop (the scheduler's configs carry the same knob as
/// `parameter_estimate`, default 64).
///
/// # Panics
///
/// Panics if `sched` is not a schedule of `scop` (statement count or
/// row arity mismatch).
pub fn extract_features(
    scop: &Scop,
    sched: &Schedule,
    deps: &[Dependence],
    param_estimate: i64,
) -> ScheduleFeatures {
    assert_eq!(
        sched.num_statements(),
        scop.statements.len(),
        "schedule/scop statement count"
    );
    let dims = sched.dims();
    let est = param_estimate.max(2);

    // Tiling and vectorization facts live on the schedule tree; a
    // schedule that never went through post-processing has no tree and
    // therefore neither transformation.
    let facts: Vec<TileFact> = match sched.tree() {
        Some(tree) => {
            let mut v = Vec::new();
            collect_tile_facts(&tree.root, &mut v);
            v
        }
        None => Vec::new(),
    };

    // Per-dimension trip estimates: parametric for loop dims, 1 for
    // constant levels, capped at the tile size for tiled point loops.
    let mut trips: Vec<i64> = (0..dims)
        .map(|d| if is_loop_dim(sched, d) { est } else { 1 })
        .collect();
    for f in &facts {
        for (&d, &size) in f.point_dims.iter().zip(&f.sizes) {
            trips[d] = trips[d].min(size.max(1));
        }
    }

    // A tile fact covers a contiguous run of flat dimensions (possibly
    // permuted within the run by the innermost-coincident rotation);
    // index it by the run's first dimension for the executed-loop walk.
    let mut fact_at: Vec<Option<&TileFact>> = vec![None; dims];
    for f in &facts {
        if let (Some(&lo), Some(&hi)) = (f.point_dims.iter().min(), f.point_dims.iter().max()) {
            if hi - lo + 1 == f.point_dims.len() && hi < dims {
                fact_at[lo] = Some(f);
            }
        }
    }

    // The *executed* loop sequence, outermost first: a tiled band runs
    // its tile loops (trip ≈ est / size, parallelism from the stricter
    // tile-member coincidence flags) before its point loops, so outer
    // parallelism and barrier counts must both be read off this
    // sequence, not off the scheduling dimensions alone. Constant
    // (splitting) levels contribute trip-1 sequential entries, harmless
    // in every product.
    let mut executed: Vec<(bool, i64)> = Vec::with_capacity(2 * dims);
    let mut d = 0;
    while d < dims {
        if let Some(f) = fact_at[d] {
            for (k, &size) in f.sizes.iter().enumerate() {
                let tile_trip = clamp(ceil_div(i128::from(est), i128::from(size.max(1)))).max(1);
                executed.push((f.tile_parallel[k], tile_trip));
            }
            for (k, &p) in f.point_dims.iter().enumerate() {
                executed.push((f.point_parallel[k] && is_loop_dim(sched, p), trips[p]));
            }
            d += f.point_dims.len();
        } else {
            executed.push((sched.parallel()[d] && is_loop_dim(sched, d), trips[d]));
            d += 1;
        }
    }
    let first_executed_loop = executed.iter().position(|&(_, trip)| trip > 1);
    let outer_parallel = first_executed_loop.is_some_and(|i| executed[i].0);
    let parallel_dims = sched.parallel().iter().filter(|&&p| p).count();
    let max_band_width = sched
        .band_ranges()
        .into_iter()
        .map(|(a, b)| b - a)
        .max()
        .unwrap_or(0);
    let vectorized_stmts = {
        let mut marked: Vec<usize> = sched
            .tree()
            .map(|tree| {
                tree.marks()
                    .into_iter()
                    .filter_map(|m| match m {
                        MarkKind::Vectorize(stmts) => Some(stmts.iter().copied()),
                        _ => None,
                    })
                    .flatten()
                    .collect()
            })
            .unwrap_or_default();
        marked.sort_unstable();
        marked.dedup();
        marked.len()
    };

    let mut total_ops: i128 = 0;
    let mut total_instances: i128 = 0;
    for s in &scop.statements {
        let inst = pow_est(est, s.depth());
        total_instances = (total_instances + inst).min(CLAMP);
        total_ops = (total_ops + inst * i128::from(s.compute_ops.max(1))).min(CLAMP);
    }

    let element_size = scop
        .arrays
        .iter()
        .map(|a| a.element_size)
        .max()
        .unwrap_or(8)
        .max(1);
    let tiled = !facts.is_empty();
    let footprint_bytes = if let Some(f) = facts.first() {
        let tile_iters = f
            .sizes
            .iter()
            .fold(1i128, |acc, &s| (acc * i128::from(s.max(1))).min(CLAMP));
        clamp(i128::from(scop.arrays.len().max(1) as i64) * i128::from(element_size) * tile_iters)
    } else {
        let mut bytes: i128 = 0;
        for a in &scop.arrays {
            bytes =
                (bytes + i128::from(a.element_size.max(1)) * pow_est(est, a.dims.len())).min(CLAMP);
        }
        clamp(bytes)
    };

    // Reuse distance per dependence: iterations of everything nested
    // inside the carrying dimension (1 when carried innermost or
    // loop-independent — the reuse is immediate).
    let reuse_distances: Vec<i64> = deps
        .iter()
        .map(|dep| {
            let carry = (0..dims).find(|&d| {
                strongly_satisfies(
                    dep,
                    &sched.stmt(dep.src).rows()[d],
                    &sched.stmt(dep.dst).rows()[d],
                )
            });
            let first_inner = carry.map_or(dims, |c| c + 1);
            let inner: i128 = (first_inner..dims)
                .map(|d| i128::from(trips[d]))
                .fold(1, |acc, t| (acc * t).min(CLAMP));
            clamp(inner)
        })
        .collect();

    // Synchronization: one fork/join when the outermost executed loop
    // is parallel; otherwise one barrier per iteration of the
    // sequential executed loops *enclosing* the first parallel one —
    // tile loops included, so a sequential tile loop over a parallel
    // point loop is charged per tile step, not as a single fork/join.
    let sync_events = match executed.iter().position(|&(parallel, _)| parallel) {
        _ if outer_parallel => 1,
        None => 0,
        Some(first_parallel) => clamp(
            executed[..first_parallel]
                .iter()
                .map(|&(_, trip)| i128::from(trip))
                .fold(1, |acc, t| (acc * t).min(CLAMP)),
        ),
    };

    ScheduleFeatures {
        dims,
        num_stmts: scop.statements.len(),
        outer_parallel,
        parallel_dims,
        max_band_width,
        vectorized_stmts,
        total_ops: clamp(total_ops),
        total_instances: clamp(total_instances),
        tiled,
        footprint_bytes,
        reuse_distances,
        element_size,
        sync_events,
    }
}

/// Estimated execution cycles of a scheduled SCoP on `machine`.
///
/// The formula, all saturating integer arithmetic:
///
/// ```text
/// compute = total_ops, with the vectorized fraction of statements
///           divided by the SIMD lane count
/// compute /= num_cores          when any dimension is parallel
/// sync    = sync_events × sync_cycles
/// memory  = spilled_streams × total_instances × miss_penalty_cycles
///                             / elements_per_line
/// cycles  = compute + sync + memory
/// ```
///
/// A dependence *spills* when its reuse distance times the element size
/// exceeds the cache capacity (the value is evicted before its reuse);
/// an overflowing tile (`footprint_bytes > cache_bytes` while tiled)
/// counts as one more spilled stream. Misses are amortized over a cache
/// line (unit-stride streaming assumption).
///
/// The result is strictly positive, finite, and — for a fixed feature
/// vector — **monotonically non-increasing in
/// [`num_cores`](MachineModel::num_cores)** whenever the schedule has
/// any parallelism (only the compute term depends on the core count).
pub fn estimate_cycles(machine: &MachineModel, f: &ScheduleFeatures) -> i64 {
    let ops = i128::from(f.total_ops.max(1));
    let lanes = i128::from(machine.vector_lanes(f.element_size).max(1));
    let mut compute = if f.num_stmts == 0 {
        ops
    } else {
        // Scale the vectorized fraction of the work by the lane count.
        let vec_ops = ops * i128::from(f.vectorized_stmts as i64) / i128::from(f.num_stmts as i64);
        (ops - vec_ops) + ceil_div(vec_ops, lanes)
    };
    if f.outer_parallel || f.parallel_dims > 0 {
        compute = ceil_div(compute, i128::from(machine.num_cores.max(1)));
    }

    let sync = i128::from(f.sync_events) * i128::from(machine.sync_cycles);

    let cache = i128::from(machine.cache_bytes.max(1));
    let mut spilled = f
        .reuse_distances
        .iter()
        .filter(|&&r| i128::from(r) * i128::from(f.element_size) > cache)
        .count() as i128;
    if f.tiled && i128::from(f.footprint_bytes) > cache {
        spilled += 1;
    }
    let line = i128::from(machine.elements_per_line(f.element_size).max(1));
    let memory =
        spilled * i128::from(f.total_instances.max(1)) * i128::from(machine.miss_penalty_cycles)
            / line;

    clamp((compute + sync + memory).max(1))
}

/// The model as a scenario score: negated [`estimate_cycles`], so that
/// "higher is better" matches `winner_by` and ties between equal-cost
/// schedules resolve toward the earlier candidate.
pub fn model_score(machine: &MachineModel, f: &ScheduleFeatures) -> i64 {
    -estimate_cycles(machine, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::{Aff, BandMember, MemberTerm, ScheduleTree, ScopBuilder, StmtSchedule};

    /// `for t for i A[i] = A[i-1] + A[i+1];` — the stencil under test.
    fn stencil() -> Scop {
        let mut b = ScopBuilder::new("stencil");
        let t = b.param("T");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("t", Aff::val(0), t - 1);
        b.open_loop("i", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .read(a, &[Aff::var("i") + 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    /// A single-term band member `⌊row·x / div⌋` of the one-statement
    /// stencil, whose flat rows are over `(t, i, T, N, 1)`.
    fn member(d: usize, div: i64, coincident: bool) -> BandMember {
        let mut row = vec![0i64; 5];
        row[d] = 1;
        BandMember {
            terms: vec![MemberTerm {
                rows: vec![row],
                div,
                source_dim: d,
            }],
            coincident,
        }
    }

    /// The tree of the identity schedule tiled with `sizes`: a
    /// `Mark::Tile` over a tile band over the point band.
    fn tiled_tree(
        sizes: Vec<i64>,
        tile_parallel: Vec<bool>,
        point_parallel: Vec<bool>,
    ) -> ScheduleTree {
        let n = sizes.len();
        let tiles = (0..n)
            .map(|d| member(d, sizes[d], tile_parallel[d]))
            .collect();
        let points = (0..n).map(|d| member(d, 1, point_parallel[d])).collect();
        ScheduleTree {
            nstmts: 1,
            root: TreeNode::Mark {
                kind: MarkKind::Tile(sizes),
                child: TreeNode::Band {
                    members: tiles,
                    permutable: true,
                    child: TreeNode::Band {
                        members: points,
                        permutable: true,
                        child: TreeNode::Leaf.boxed(),
                    }
                    .boxed(),
                }
                .boxed(),
            },
        }
    }

    /// The identity (t, i) schedule of the stencil, one permutable band.
    fn identity_schedule(tiled: Option<Vec<i64>>) -> Schedule {
        let mut ss = StmtSchedule::new(2, 2);
        ss.push_row(vec![1, 0, 0, 0, 0]);
        ss.push_row(vec![0, 1, 0, 0, 0]);
        let mut sched = Schedule::from_parts(vec![ss], vec![0, 0], vec![false, false]);
        if let Some(sizes) = tiled {
            let n = sizes.len();
            sched.set_tree(tiled_tree(sizes, vec![false; n], vec![false; n]));
        }
        sched
    }

    #[test]
    fn tiled_stencil_has_bounded_footprint_and_reuse() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        assert!(!deps.is_empty());

        let plain = extract_features(&scop, &identity_schedule(None), &deps, 1024);
        let tiled = extract_features(&scop, &identity_schedule(Some(vec![16, 16])), &deps, 1024);

        // Untiled: the footprint is the whole (estimated) array; tiled:
        // one 16×16 tile of it, independent of the parameter estimate.
        assert_eq!(tiled.footprint_bytes, 8 * 16 * 16);
        assert!(plain.footprint_bytes > tiled.footprint_bytes);
        // Time-carried reuse waits a full row sweep untiled (1024
        // iterations) but at most a tile row (16) tiled.
        assert_eq!(plain.reuse_distances.iter().max(), Some(&1024));
        assert!(tiled.reuse_distances.iter().all(|&r| r <= 16));

        // On a machine whose cache holds a tile but not a row sweep,
        // the model prefers the tiled schedule.
        let small_cache = MachineModel {
            cache_bytes: 4 << 10,
            ..MachineModel::default()
        };
        assert!(
            estimate_cycles(&small_cache, &tiled) < estimate_cycles(&small_cache, &plain),
            "tiled {tiled:?} must beat plain {plain:?}"
        );
    }

    #[test]
    fn outer_parallelism_is_read_from_tile_or_point_flags() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let mut sched = identity_schedule(None);
        assert!(!extract_features(&scop, &sched, &deps, 64).outer_parallel);

        // Point flag on the outermost dimension.
        sched.parallel_mut()[0] = true;
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(f.outer_parallel);
        assert_eq!(f.sync_events, 1);

        // Tiled with a sequential tile loop: the tile loop is the
        // outermost executed loop, so outer parallelism is *its*
        // coincidence flag even while the point flag stays true.
        sched.set_tree(tiled_tree(vec![8, 8], vec![false, true], vec![true, false]));
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(!f.outer_parallel);
        assert!(f.parallel_dims > 0);
    }

    #[test]
    fn inner_parallelism_pays_barriers() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let mut sched = identity_schedule(None);
        sched.parallel_mut()[1] = true; // parallel inner, sequential outer
        let f = extract_features(&scop, &sched, &deps, 64);
        assert!(!f.outer_parallel);
        assert_eq!(f.sync_events, 64, "one barrier per outer iteration");

        let m = MachineModel::default();
        let mut outer = f.clone();
        outer.outer_parallel = true;
        outer.sync_events = 1;
        assert!(
            estimate_cycles(&m, &outer) < estimate_cycles(&m, &f),
            "outer parallelism must beat inner at equal work"
        );
    }

    #[test]
    fn vectorization_reduces_compute() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let mut sched = identity_schedule(None);
        let base = extract_features(&scop, &sched, &deps, 64);
        let inner = sched.tree_or_lowered();
        sched.set_tree(ScheduleTree {
            nstmts: inner.nstmts,
            root: TreeNode::Mark {
                kind: MarkKind::Vectorize(vec![0]),
                child: inner.root.boxed(),
            },
        });
        let vec = extract_features(&scop, &sched, &deps, 64);
        assert_eq!(vec.vectorized_stmts, 1);
        let m = MachineModel::default();
        assert!(estimate_cycles(&m, &vec) < estimate_cycles(&m, &base));
    }

    #[test]
    fn scores_are_finite_under_extreme_estimates() {
        let scop = stencil();
        let deps = polytops_deps::analyze(&scop);
        let sched = identity_schedule(Some(vec![1 << 20, 1 << 20]));
        let f = extract_features(&scop, &sched, &deps, i64::MAX / 2);
        let m = MachineModel::default();
        let cycles = estimate_cycles(&m, &f);
        assert!(cycles > 0);
        assert_eq!(model_score(&m, &f), -cycles);
    }
}
