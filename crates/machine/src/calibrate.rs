//! Model calibration: fitting a [`MachineModel`]'s cost constants to
//! measured kernel behavior.
//!
//! The static model charges two machine constants the hardware actually
//! decides — [`miss_penalty_cycles`](MachineModel::miss_penalty_cycles)
//! and [`sync_cycles`](MachineModel::sync_cycles). This module fits
//! both from three generated C micro-kernels with known op/miss/sync
//! budgets (the "performance vocabulary" idea: map transformation
//! features to measured effects):
//!
//! * `alu` — a pure arithmetic loop: the cycles-per-nanosecond
//!   baseline;
//! * `miss` — the same arithmetic plus a cache-line-strided walk over
//!   an LLC-overflowing array: every step misses;
//! * `sync` — the same arithmetic plus a barrier per outer iteration.
//!
//! Timing goes through the [`Timer`] trait. [`HostTimer`] compiles and
//! runs the kernels with the system C compiler (best effort: any
//! failure yields `None`, never an error). [`SyntheticTimer`] is an
//! analytic stand-in — it "times" a kernel by pricing its budgets
//! under a ground-truth machine — so tests and CI calibrate
//! bit-deterministically on any host, any thread count, every run:
//!
//! ```text
//! cycles_per_ns     = alu_ops / t_alu
//! miss_penalty      = (t_miss − t_alu) × cycles_per_ns / misses
//! sync_cycles       = (t_sync − t_alu) × cycles_per_ns / syncs
//! ```
//!
//! all in exact saturating integer arithmetic — calibrating twice from
//! the same timer readings produces bit-identical reports, and the
//! synthetic fit recovers the ground-truth constants exactly.

use crate::MachineModel;

/// One generated calibration micro-kernel: complete C source plus the
/// op/miss/sync budgets its measured time is decomposed against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationKernel {
    /// Kernel label (`alu`, `miss`, `sync`).
    pub name: &'static str,
    /// Self-timing C source: prints elapsed nanoseconds to stdout.
    pub source: String,
    /// Arithmetic operations the kernel performs.
    pub ops: u64,
    /// Cache misses the kernel is constructed to take.
    pub misses: u64,
    /// Synchronization events (barriers) the kernel performs.
    pub syncs: u64,
}

/// A way of timing a [`CalibrationKernel`], in nanoseconds.
///
/// `None` means the kernel could not be timed (no compiler, execution
/// failure); calibration then reports nothing rather than guessing.
pub trait Timer {
    /// Wall time of one kernel run in nanoseconds, or `None`.
    fn time_ns(&self, kernel: &CalibrationKernel) -> Option<u64>;
}

/// The analytic timer: prices a kernel's declared budgets under a
/// ground-truth machine at one cycle per nanosecond.
///
/// A pure function of the kernel metadata — no clocks, no threads, no
/// I/O — so every calibration against it is bit-identical across runs,
/// hosts and thread counts, and [`calibrate`] recovers the ground
/// truth's `miss_penalty_cycles`/`sync_cycles` exactly.
#[derive(Debug, Clone)]
pub struct SyntheticTimer {
    /// The machine whose constants the synthetic measurements encode.
    pub ground_truth: MachineModel,
}

impl Timer for SyntheticTimer {
    fn time_ns(&self, kernel: &CalibrationKernel) -> Option<u64> {
        let m = &self.ground_truth;
        let ns = u128::from(kernel.ops)
            + u128::from(kernel.misses) * u128::from(m.miss_penalty_cycles)
            + u128::from(kernel.syncs) * u128::from(m.sync_cycles);
        Some(ns.min(u128::from(u64::MAX)) as u64)
    }
}

/// The host timer: writes the kernel source to a scratch directory,
/// compiles it with the system C compiler and runs it, reading the
/// printed nanosecond count. Strictly best effort — a missing
/// compiler, failed build or failed run yields `None`.
#[derive(Debug, Clone)]
pub struct HostTimer {
    /// C compiler to invoke (default `cc`).
    pub compiler: String,
    /// Scratch directory for sources and binaries (default: the
    /// system temp dir).
    pub scratch: std::path::PathBuf,
}

impl Default for HostTimer {
    fn default() -> HostTimer {
        HostTimer {
            compiler: "cc".to_string(),
            scratch: std::env::temp_dir(),
        }
    }
}

impl Timer for HostTimer {
    fn time_ns(&self, kernel: &CalibrationKernel) -> Option<u64> {
        let tag = format!("polytops-calib-{}-{}", std::process::id(), kernel.name);
        let src = self.scratch.join(format!("{tag}.c"));
        let bin = self.scratch.join(tag);
        std::fs::write(&src, &kernel.source).ok()?;
        let built = std::process::Command::new(&self.compiler)
            .arg("-O2")
            .arg(&src)
            .arg("-o")
            .arg(&bin)
            .output()
            .ok()?;
        if !built.status.success() {
            return None;
        }
        let run = std::process::Command::new(&bin).output().ok()?;
        let _ = std::fs::remove_file(&src);
        let _ = std::fs::remove_file(&bin);
        if !run.status.success() {
            return None;
        }
        String::from_utf8(run.stdout).ok()?.trim().parse().ok()
    }
}

/// Iterations of the arithmetic baseline loop.
const ALU_OPS: u64 = 1 << 22;
/// Strided loads of the miss kernel (one per cache line, array ≫ LLC).
const MISSES: u64 = 1 << 16;
/// Barriers of the sync kernel.
const SYNCS: u64 = 1 << 10;

/// Shared self-timing C scaffold: runs `body` between two
/// `clock_gettime` readings and prints elapsed nanoseconds.
fn kernel_source(decls: &str, body: &str) -> String {
    format!(
        "#include <stdio.h>\n\
         #include <stdlib.h>\n\
         #include <time.h>\n\
         {decls}\n\
         int main(void) {{\n\
           struct timespec a, b;\n\
           clock_gettime(CLOCK_MONOTONIC, &a);\n\
         {body}\n\
           clock_gettime(CLOCK_MONOTONIC, &b);\n\
           long long ns = (b.tv_sec - a.tv_sec) * 1000000000LL + (b.tv_nsec - a.tv_nsec);\n\
           printf(\"%lld\\n\", ns);\n\
           return 0;\n\
         }}\n"
    )
}

/// The three calibration kernels for `machine` (its cache geometry
/// sizes the miss kernel's array and stride).
pub fn calibration_kernels(machine: &MachineModel) -> Vec<CalibrationKernel> {
    let line = u64::from(machine.cache_line_bytes.max(1));
    // Four times the LLC: every strided load leaves the cache cold.
    let array = (machine.cache_bytes.max(1) * 4).max(line * MISSES);
    let alu_body = format!(
        "  volatile double acc = 0.0;\n\
         \x20 for (long long i = 0; i < {ALU_OPS}LL; i++) acc += (double)(i & 7);\n"
    );
    let miss_body = format!(
        "  volatile double acc = 0.0;\n\
         \x20 long long step = {line}LL, n = {array}LL / {line}LL;\n\
         \x20 for (long long i = 0; i < {MISSES}LL; i++) {{\n\
         \x20   acc += (double)buf[(i % n) * step];\n\
         \x20   for (int k = 0; k < {}; k++) acc += (double)(k & 7);\n\
         \x20 }}\n",
        ALU_OPS / MISSES
    );
    let sync_body = format!(
        "  volatile double acc = 0.0;\n\
         \x20 for (long long i = 0; i < {SYNCS}LL; i++) {{\n\
         \x20   #pragma omp barrier\n\
         \x20   for (int k = 0; k < {}; k++) acc += (double)(k & 7);\n\
         \x20 }}\n",
        ALU_OPS / SYNCS
    );
    vec![
        CalibrationKernel {
            name: "alu",
            source: kernel_source("", &alu_body),
            ops: ALU_OPS,
            misses: 0,
            syncs: 0,
        },
        CalibrationKernel {
            name: "miss",
            source: kernel_source(
                &format!("static unsigned char buf[{array}ULL];"),
                &miss_body,
            ),
            ops: ALU_OPS,
            misses: MISSES,
            syncs: 0,
        },
        CalibrationKernel {
            name: "sync",
            source: kernel_source("", &sync_body),
            ops: ALU_OPS,
            misses: 0,
            syncs: SYNCS,
        },
    ]
}

/// The outcome of one calibration pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationReport {
    /// The input machine with its two cost constants replaced by the
    /// fitted values.
    pub machine: MachineModel,
    /// Fitted cycles per cache miss (≥ 1).
    pub miss_penalty_cycles: u32,
    /// Fitted cycles per synchronization event (≥ 1).
    pub sync_cycles: u32,
    /// The raw nanosecond readings, in kernel order (`alu`, `miss`,
    /// `sync`) — what the fit was computed from.
    pub samples: Vec<(&'static str, u64)>,
}

/// Converts an excess time over the ALU baseline into cycles per event
/// using the baseline's cycles-per-nanosecond ratio, exact saturating
/// integer arithmetic, clamped into the model's `u32` range (≥ 1).
fn fit(excess_ns: u64, t_alu: u64, ops: u64, events: u64) -> u32 {
    let cycles = u128::from(excess_ns) * u128::from(ops)
        / (u128::from(t_alu.max(1)) * u128::from(events.max(1)));
    cycles.clamp(1, u128::from(u32::MAX)) as u32
}

/// Calibrates `base`'s `miss_penalty_cycles` and `sync_cycles` against
/// `timer`. Returns `None` when any kernel cannot be timed (e.g. no
/// host compiler) — calibration never guesses.
///
/// The fit is a pure integer function of the three nanosecond readings,
/// so a deterministic timer (the [`SyntheticTimer`]) makes the whole
/// pass bit-deterministic; with the ground-truth timer the fit recovers
/// the ground truth exactly (a unit test and the `learning` bench hold
/// this).
pub fn calibrate(base: &MachineModel, timer: &dyn Timer) -> Option<CalibrationReport> {
    let kernels = calibration_kernels(base);
    let mut samples = Vec::with_capacity(kernels.len());
    for k in &kernels {
        samples.push((k.name, timer.time_ns(k)?));
    }
    let t_alu = samples[0].1;
    let t_miss = samples[1].1;
    let t_sync = samples[2].1;
    let miss_penalty_cycles = fit(
        t_miss.saturating_sub(t_alu),
        t_alu,
        kernels[0].ops,
        kernels[1].misses,
    );
    let sync_cycles = fit(
        t_sync.saturating_sub(t_alu),
        t_alu,
        kernels[0].ops,
        kernels[2].syncs,
    );
    Some(CalibrationReport {
        machine: MachineModel {
            miss_penalty_cycles,
            sync_cycles,
            ..base.clone()
        },
        miss_penalty_cycles,
        sync_cycles,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fit_recovers_the_ground_truth_exactly() {
        let truth = MachineModel {
            miss_penalty_cycles: 57,
            sync_cycles: 3111,
            ..MachineModel::default()
        };
        let timer = SyntheticTimer {
            ground_truth: truth.clone(),
        };
        let base = MachineModel::default();
        let report = calibrate(&base, &timer).expect("synthetic timing never fails");
        assert_eq!(report.miss_penalty_cycles, 57);
        assert_eq!(report.sync_cycles, 3111);
        assert_eq!(report.machine.miss_penalty_cycles, 57);
        assert_eq!(report.machine.sync_cycles, 3111);
        assert_eq!(report.machine.cache_bytes, base.cache_bytes);
    }

    #[test]
    fn synthetic_calibration_is_bit_deterministic_across_threads() {
        let truth = MachineModel {
            miss_penalty_cycles: 41,
            sync_cycles: 1709,
            ..MachineModel::default()
        };
        let base = MachineModel::default();
        let one = calibrate(
            &base,
            &SyntheticTimer {
                ground_truth: truth.clone(),
            },
        )
        .unwrap();
        let reports: Vec<CalibrationReport> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let truth = truth.clone();
                    let base = base.clone();
                    s.spawn(move || {
                        calibrate(
                            &base,
                            &SyntheticTimer {
                                ground_truth: truth,
                            },
                        )
                        .unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in reports {
            assert_eq!(r, one, "calibration must not depend on the thread shape");
        }
    }

    #[test]
    fn kernels_carry_compilable_looking_sources_and_budgets() {
        let kernels = calibration_kernels(&MachineModel::default());
        assert_eq!(kernels.len(), 3);
        for k in &kernels {
            assert!(k.source.contains("clock_gettime"), "{} self-times", k.name);
            assert!(k.ops > 0);
        }
        assert!(kernels[1].misses > 0 && kernels[1].syncs == 0);
        assert!(kernels[2].syncs > 0 && kernels[2].misses == 0);
    }

    #[test]
    fn host_timer_failure_is_a_clean_none() {
        let timer = HostTimer {
            compiler: "definitely-not-a-compiler".to_string(),
            ..HostTimer::default()
        };
        assert!(calibrate(&MachineModel::default(), &timer).is_none());
    }
}
