//! Machine models and the static performance model for PolyTOPS.
//!
//! The scheduler proper is machine-independent; tile-size selection,
//! vectorization profitability and parallel speedup estimation (the
//! "external decisions" of the paper's Fig. 1) consume a
//! [`MachineModel`]. On top of the model structure and its derived
//! quantities, the [`model`] module scores *scheduled* SCoPs: it
//! extracts a machine-independent feature vector (outer parallelism,
//! reuse distances, tile footprints, vectorizable statements) from a
//! schedule plus its dependence set, and folds it with a
//! [`MachineModel`] into estimated cycles — the oracle the autotuner
//! (`polytops_core::tune`) ranks candidate configurations with. The
//! [`calibrate`] module closes the model-reality loop: it fits the two
//! cost constants (`miss_penalty_cycles`, `sync_cycles`) by timing
//! generated C micro-kernels behind a [`calibrate::Timer`] — on the
//! host when a compiler is available, or against the deterministic
//! synthetic timer in tests and CI. See `docs/MODEL.md` for the full
//! formula and determinism contract.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod model;

/// A simple abstract machine: caches, SIMD, core counts and the two
/// cost constants the performance model charges for synchronization
/// and cache misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineModel {
    /// Cache line size in bytes.
    pub cache_line_bytes: u32,
    /// Last-level cache capacity in bytes (tile-size budgets).
    pub cache_bytes: u64,
    /// SIMD register width in bytes.
    pub vector_bytes: u32,
    /// Hardware parallelism (cores × threads).
    pub num_cores: u32,
    /// Estimated cycles per cache miss (the model's memory penalty).
    pub miss_penalty_cycles: u32,
    /// Estimated cycles per synchronization event (fork/join or
    /// barrier).
    pub sync_cycles: u32,
}

impl Default for MachineModel {
    /// A generic contemporary CPU: 64 B lines, 32 MiB LLC, 256-bit SIMD,
    /// 16 cores, 24-cycle misses, 2000-cycle barriers.
    fn default() -> MachineModel {
        MachineModel {
            cache_line_bytes: 64,
            cache_bytes: 32 << 20,
            vector_bytes: 32,
            num_cores: 16,
            miss_penalty_cycles: 24,
            sync_cycles: 2000,
        }
    }
}

impl MachineModel {
    /// Number of SIMD lanes for elements of `element_size` bytes
    /// (at least 1).
    pub fn vector_lanes(&self, element_size: u32) -> u32 {
        (self.vector_bytes / element_size.max(1)).max(1)
    }

    /// Elements of `element_size` bytes per cache line (at least 1).
    pub fn elements_per_line(&self, element_size: u32) -> u32 {
        (self.cache_line_bytes / element_size.max(1)).max(1)
    }

    /// A square tile edge (in elements) such that `footprint_arrays`
    /// tiles of `element_size` elements fit in cache together.
    pub fn square_tile_edge(&self, element_size: u32, footprint_arrays: u32) -> u64 {
        let per_array = self.cache_bytes / u64::from(footprint_arrays.max(1));
        let elems = per_array / u64::from(element_size.max(1));
        let mut edge = 1u64;
        while (edge + 1) * (edge + 1) <= elems {
            edge += 1;
        }
        edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = MachineModel::default();
        assert_eq!(m.vector_lanes(8), 4);
        assert_eq!(m.vector_lanes(4), 8);
        assert_eq!(m.elements_per_line(8), 8);
        // 3 double arrays tiling into 32 MiB: edge^2 <= 32Mi/3/8.
        let e = m.square_tile_edge(8, 3);
        assert!(e * e * 8 * 3 <= m.cache_bytes);
        assert!((e + 1) * (e + 1) * 8 * 3 > m.cache_bytes);
    }

    #[test]
    fn degenerate_element_sizes_are_clamped() {
        let m = MachineModel::default();
        assert_eq!(m.vector_lanes(0), 32);
        assert_eq!(m.vector_lanes(1024), 1);
        assert!(m.square_tile_edge(0, 0) >= 1);
    }
}
