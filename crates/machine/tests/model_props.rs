//! Property tests for the static performance model (vendored proptest
//! shim): scores stay finite under arbitrary feature vectors, estimated
//! cycles are monotonically non-increasing in the machine's core count
//! for parallel schedules (with the stride-aware memory term in play),
//! transposed accesses extract the row length — not 1 — as their
//! stride, and the inferred per-iterator extents agree with exhaustive
//! domain enumeration on every reference kernel.

use polytops_ir::{Aff, ScopBuilder, StmtId};
use polytops_machine::model::{
    access_stride, estimate_cycles, iterator_extents, model_score, ScheduleFeatures,
};
use polytops_machine::MachineModel;
use proptest::prelude::*;

/// A synthetic feature vector: the generator drives the quantities the
/// cost formula actually reads.
#[allow(clippy::too_many_arguments)]
fn features(
    outer_parallel: bool,
    parallel_dims: usize,
    vectorized_stmts: usize,
    num_stmts: usize,
    total_ops: i64,
    reuse: Vec<i64>,
    strides: Vec<i64>,
    footprint_bytes: i64,
    sync_events: i64,
) -> ScheduleFeatures {
    ScheduleFeatures {
        dims: 3,
        num_stmts,
        outer_parallel,
        parallel_dims,
        max_band_width: 2,
        vectorized_stmts: vectorized_stmts.min(num_stmts),
        total_ops,
        total_instances: total_ops,
        tiled: footprint_bytes > 0,
        footprint_bytes,
        trip_counts: vec![1, total_ops.clamp(1, 1 << 20), 1],
        reuse_distances: reuse,
        stream_strides: strides,
        element_size: 8,
        sync_events,
    }
}

/// The transposed-walk fixture: `A[j][i]` (and a straight `B[i][j]`)
/// inside `for i in 0..rows, j in 0..cols` over `A[rows][cols]`.
fn transposed(rows: i64, cols: i64) -> polytops_ir::Scop {
    let mut b = ScopBuilder::new("transposed");
    let a = b.array("A", &[Aff::val(rows), Aff::val(cols)], 8);
    let bb = b.array("B", &[Aff::val(rows), Aff::val(cols)], 8);
    b.open_loop("i", Aff::val(0), Aff::val(rows - 1));
    b.open_loop("j", Aff::val(0), Aff::val(cols - 1));
    b.stmt("S0")
        .read(a, &[Aff::var("j"), Aff::var("i")])
        .write(bb, &[Aff::var("i"), Aff::var("j")])
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scores_are_finite_and_negative_cycles(
        (ops, sync) in (1i64..=i64::MAX / 16, 0i64..=1 << 40),
        reuse in collection::vec(0i64..=i64::MAX / 16, 0..6),
        strides in collection::vec(-1i64..=i64::MAX / 16, 0..6),
        footprint in 0i64..=i64::MAX / 16,
        (outer, pdims, vstmts) in (0u8..=1, 0usize..=3, 0usize..=4),
        cores in 1u32..=1024,
    ) {
        let f = features(outer == 1, pdims, vstmts, 4, ops, reuse, strides, footprint, sync);
        let machine = MachineModel { num_cores: cores, ..MachineModel::default() };
        let cycles = estimate_cycles(&machine, &f);
        prop_assert!(cycles > 0, "cycles must be positive, got {cycles}");
        prop_assert!(cycles < i64::MAX / 2, "cycles must stay clamped, got {cycles}");
        prop_assert_eq!(model_score(&machine, &f), -cycles);
    }

    #[test]
    fn parallel_schedules_are_monotone_in_num_cores(
        ops in 1i64..=1 << 50,
        reuse in collection::vec(0i64..=1 << 50, 0..6),
        strides in collection::vec(-1i64..=1 << 20, 0..6),
        (footprint, sync) in (0i64..=1 << 50, 0i64..=1 << 20),
        (outer, extra_pdims, vstmts) in (0u8..=1, 0usize..=3, 0usize..=4),
        (lo, hi) in (1u32..=512, 1u32..=512),
    ) {
        // Ensure the schedule is parallel one way or the other.
        let pdims = if outer == 1 { extra_pdims } else { extra_pdims + 1 };
        let f = features(outer == 1, pdims, vstmts, 4, ops, reuse, strides, footprint, sync);
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let few = MachineModel { num_cores: lo, ..MachineModel::default() };
        let many = MachineModel { num_cores: hi, ..MachineModel::default() };
        prop_assert!(
            estimate_cycles(&many, &f) <= estimate_cycles(&few, &f),
            "more cores must never slow a parallel schedule: {lo} -> {hi} cores"
        );
    }

    #[test]
    fn transposed_access_stride_is_the_row_length(
        rows in 2i64..=128,
        cols in 2i64..=128,
    ) {
        let scop = transposed(rows, cols);
        let stmt = &scop.statements[0];
        let read = &stmt.accesses[0]; // A[j][i]
        let write = &stmt.accesses[1]; // B[i][j]
        // Stepping j in A[j][i] jumps a whole row of `cols` elements —
        // the classic transposed walk the model must not mistake for a
        // contiguous stream.
        prop_assert_eq!(access_stride(&scop, stmt, read, 1, 64), Some(cols));
        prop_assert_eq!(access_stride(&scop, stmt, read, 0, 64), Some(1));
        // The straight walk is the mirror image.
        prop_assert_eq!(access_stride(&scop, stmt, write, 1, 64), Some(1));
        prop_assert_eq!(access_stride(&scop, stmt, write, 0, 64), Some(cols));
    }
}

proptest! {
    // Enumeration is exhaustive, so a handful of parameter values
    // already sweeps every kernel × statement × iterator combination.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn inferred_extents_match_the_enumeration_oracle(est in 4i64..=8) {
        let mut kernels = polytops_workloads::all_kernels();
        kernels.push(("long_chain_12", polytops_workloads::synthetic::long_chain(12)));
        for (name, scop) in &kernels {
            let params = vec![est; scop.nparams()];
            for (s, stmt) in scop.statements.iter().enumerate() {
                let extents = iterator_extents(stmt, scop.nparams(), est);
                prop_assert_eq!(extents.len(), stmt.depth());
                let points = scop.enumerate_domain(StmtId(s), &params);
                if points.is_empty() {
                    continue;
                }
                for k in 0..stmt.depth() {
                    let lo = points.iter().map(|p| p[k]).min().unwrap();
                    let hi = points.iter().map(|p| p[k]).max().unwrap();
                    prop_assert!(
                        extents[k] == hi - lo + 1,
                        "{name}/{}: iterator {k} at estimate {est}: inferred {} vs oracle {}",
                        stmt.name,
                        extents[k],
                        hi - lo + 1
                    );
                }
            }
        }
    }
}
