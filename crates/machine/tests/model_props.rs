//! Property tests for the static performance model (vendored proptest
//! shim): scores stay finite under arbitrary feature vectors, and for
//! parallel schedules the estimated cycle count is monotonically
//! non-increasing in the machine's core count.

use polytops_machine::model::{estimate_cycles, model_score, ScheduleFeatures};
use polytops_machine::MachineModel;
use proptest::prelude::*;

/// A synthetic feature vector: the generator drives the quantities the
/// cost formula actually reads.
#[allow(clippy::too_many_arguments)]
fn features(
    outer_parallel: bool,
    parallel_dims: usize,
    vectorized_stmts: usize,
    num_stmts: usize,
    total_ops: i64,
    reuse: Vec<i64>,
    footprint_bytes: i64,
    sync_events: i64,
) -> ScheduleFeatures {
    ScheduleFeatures {
        dims: 3,
        num_stmts,
        outer_parallel,
        parallel_dims,
        max_band_width: 2,
        vectorized_stmts: vectorized_stmts.min(num_stmts),
        total_ops,
        total_instances: total_ops,
        tiled: footprint_bytes > 0,
        footprint_bytes,
        reuse_distances: reuse,
        element_size: 8,
        sync_events,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scores_are_finite_and_negative_cycles(
        (ops, sync) in (1i64..=i64::MAX / 16, 0i64..=1 << 40),
        reuse in collection::vec(0i64..=i64::MAX / 16, 0..6),
        footprint in 0i64..=i64::MAX / 16,
        (outer, pdims, vstmts) in (0u8..=1, 0usize..=3, 0usize..=4),
        cores in 1u32..=1024,
    ) {
        let f = features(outer == 1, pdims, vstmts, 4, ops, reuse, footprint, sync);
        let machine = MachineModel { num_cores: cores, ..MachineModel::default() };
        let cycles = estimate_cycles(&machine, &f);
        prop_assert!(cycles > 0, "cycles must be positive, got {cycles}");
        prop_assert!(cycles < i64::MAX / 2, "cycles must stay clamped, got {cycles}");
        prop_assert_eq!(model_score(&machine, &f), -cycles);
    }

    #[test]
    fn parallel_schedules_are_monotone_in_num_cores(
        ops in 1i64..=1 << 50,
        reuse in collection::vec(0i64..=1 << 50, 0..6),
        (footprint, sync) in (0i64..=1 << 50, 0i64..=1 << 20),
        (outer, extra_pdims, vstmts) in (0u8..=1, 0usize..=3, 0usize..=4),
        (lo, hi) in (1u32..=512, 1u32..=512),
    ) {
        // Ensure the schedule is parallel one way or the other.
        let pdims = if outer == 1 { extra_pdims } else { extra_pdims + 1 };
        let f = features(outer == 1, pdims, vstmts, 4, ops, reuse, footprint, sync);
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let few = MachineModel { num_cores: lo, ..MachineModel::default() };
        let many = MachineModel { num_cores: hi, ..MachineModel::default() };
        prop_assert!(
            estimate_cycles(&many, &f) <= estimate_cycles(&few, &f),
            "more cores must never slow a parallel schedule: {lo} -> {hi} cores"
        );
    }
}
