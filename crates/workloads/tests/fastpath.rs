//! Oracle certification of the heuristic fast path across the suite.
//!
//! The fast path proposes schedule rows without a lexmin solve, so its
//! only safety net is the validation pass inside the scheduler plus the
//! independent dependence oracle. This test closes the loop: every
//! sweep kernel (and both synthetic generators at a size the reference
//! kernels never reach) is scheduled under the `fast_path` preset and
//! every dependence is re-checked with
//! [`polytops_deps::schedule_respects_dependence`] — the same oracle
//! the daemon uses to certify responses.

use polytops_core::{presets, schedule};
use polytops_deps::{analyze, schedule_respects_dependence};
use polytops_workloads::{all_kernels, synthetic};

#[test]
fn fast_path_schedules_are_oracle_legal_on_every_sweep_kernel() {
    let mut kernels = all_kernels();
    kernels.push(("long_chain_24", synthetic::long_chain(24)));
    kernels.push(("wide_scop_16", synthetic::wide_scop(16)));
    for (name, scop) in kernels {
        let sched = schedule(&scop, &presets::fast_path())
            .unwrap_or_else(|e| panic!("{name} schedules under fast_path: {e:?}"));
        for dep in analyze(&scop) {
            assert!(
                schedule_respects_dependence(
                    &dep,
                    sched.stmt(dep.src).rows(),
                    sched.stmt(dep.dst).rows(),
                ),
                "{name}: fast-path schedule violates a dependence \
                 ({:?} -> {:?})",
                dep.src,
                dep.dst,
            );
        }
    }
}
