//! Request-stream generation for the `polytopsd` service: the standard
//! sweep replayed as N simulated clients.
//!
//! Each generated line is one complete `op: "schedule"` request in the
//! wire format of `docs/SERVICE.md` — the SCoP embedded as polyscop
//! exchange text, the preset grid as named scenario specs. Every client
//! replays the same sweep, which is exactly the service's sweet spot:
//! the first client to reach the daemon pays the analysis, everyone
//! else (and every later batch) rides the registry.

use std::collections::BTreeMap;

use polytops_core::json::Json;
use polytops_ir::print_scop;

use crate::all_kernels;
use crate::sweep::preset_grid;

/// Builds one schedule-request line: `kernel` under the named presets,
/// tagged `id` (echoed by the daemon).
pub fn request_line(id: &str, kernel: &str, scop: &polytops_ir::Scop, presets: &[&str]) -> String {
    let scenarios: Vec<Json> = presets
        .iter()
        .map(|preset| {
            Json::Object(BTreeMap::from([
                ("name".to_string(), Json::Str((*preset).to_string())),
                ("preset".to_string(), Json::Str((*preset).to_string())),
            ]))
        })
        .collect();
    Json::Object(BTreeMap::from([
        ("op".to_string(), Json::Str("schedule".to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("name".to_string(), Json::Str(kernel.to_string())),
        ("scop".to_string(), Json::Str(print_scop(scop))),
        ("scenarios".to_string(), Json::Array(scenarios)),
    ]))
    .compact()
}

/// [`request_line`] over the full standard preset grid.
pub fn sweep_request_line(id: &str, kernel: &str, scop: &polytops_ir::Scop) -> String {
    let grid = preset_grid();
    let presets: Vec<&str> = grid.iter().map(|(name, _)| *name).collect();
    request_line(id, kernel, scop, &presets)
}

/// The standard sweep as `clients` request streams: stream `c` holds
/// one request per reference kernel (ids `c<c>/<kernel>`), so N clients
/// submit N copies of the sweep concurrently — the daemon should dedupe
/// every kernel onto one registry entry.
pub fn sweep_request_streams(clients: usize) -> Vec<Vec<String>> {
    let kernels = all_kernels();
    (0..clients)
        .map(|c| {
            kernels
                .iter()
                .map(|(kernel, scop)| sweep_request_line(&format!("c{c}/{kernel}"), kernel, scop))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_cover_clients_and_kernels() {
        let streams = sweep_request_streams(3);
        assert_eq!(streams.len(), 3);
        for (c, stream) in streams.iter().enumerate() {
            assert_eq!(stream.len(), all_kernels().len());
            for line in stream {
                assert!(!line.contains('\n'), "one request per line");
                let parsed = polytops_core::json::parse(line).unwrap();
                let obj = parsed.as_object().unwrap();
                assert_eq!(obj["op"].as_str(), Some("schedule"));
                assert!(obj["id"].as_str().unwrap().starts_with(&format!("c{c}/")));
                assert_eq!(
                    obj["scenarios"].as_array().unwrap().len(),
                    preset_grid().len()
                );
            }
        }
    }
}
