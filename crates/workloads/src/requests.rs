//! Request-stream generation for the `polytopsd` service: the standard
//! sweep replayed as N simulated clients.
//!
//! Each generated line is one complete `op: "schedule"` request in the
//! wire format of `docs/SERVICE.md` — the SCoP embedded as polyscop
//! exchange text, the preset grid as named scenario specs. Every client
//! replays the same sweep, which is exactly the service's sweet spot:
//! the first client to reach the daemon pays the analysis, everyone
//! else (and every later batch) rides the registry.

use std::collections::BTreeMap;

use polytops_core::json::Json;
use polytops_ir::print_scop;

use crate::all_kernels;
use crate::sweep::preset_grid;

/// Builds one schedule-request line: `kernel` under the named presets,
/// tagged `id` (echoed by the daemon).
pub fn request_line(id: &str, kernel: &str, scop: &polytops_ir::Scop, presets: &[&str]) -> String {
    let scenarios: Vec<Json> = presets
        .iter()
        .map(|preset| {
            Json::Object(BTreeMap::from([
                ("name".to_string(), Json::Str((*preset).to_string())),
                ("preset".to_string(), Json::Str((*preset).to_string())),
            ]))
        })
        .collect();
    Json::Object(BTreeMap::from([
        ("op".to_string(), Json::Str("schedule".to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("name".to_string(), Json::Str(kernel.to_string())),
        ("scop".to_string(), Json::Str(print_scop(scop))),
        ("scenarios".to_string(), Json::Array(scenarios)),
    ]))
    .compact()
}

/// Builds one autotune-request line: `kernel` explored under at most
/// `max_candidates` lattice candidates at `param_estimate`, tagged
/// `id`. Submitting the same line twice is the learned-registry
/// regression scenario: the first request pays a full exploration, the
/// second must be served from the remembered winner
/// (`"learned":true,"explored_scenarios":0`) with a byte-identical
/// `winner` object.
pub fn autotune_request_line(
    id: &str,
    scop: &polytops_ir::Scop,
    max_candidates: usize,
    param_estimate: i64,
) -> String {
    Json::Object(BTreeMap::from([
        ("op".to_string(), Json::Str("autotune".to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("scop".to_string(), Json::Str(print_scop(scop))),
        (
            "max_candidates".to_string(),
            Json::Int(max_candidates as i64),
        ),
        ("param_estimate".to_string(), Json::Int(param_estimate)),
    ]))
    .compact()
}

/// [`request_line`] over the full standard preset grid.
pub fn sweep_request_line(id: &str, kernel: &str, scop: &polytops_ir::Scop) -> String {
    let grid = preset_grid();
    let presets: Vec<&str> = grid.iter().map(|(name, _)| *name).collect();
    request_line(id, kernel, scop, &presets)
}

/// The standard sweep as `clients` request streams: stream `c` holds
/// one request per reference kernel (ids `c<c>/<kernel>`), so N clients
/// submit N copies of the sweep concurrently — the daemon should dedupe
/// every kernel onto one registry entry.
pub fn sweep_request_streams(clients: usize) -> Vec<Vec<String>> {
    let kernels = all_kernels();
    (0..clients)
        .map(|c| {
            kernels
                .iter()
                .map(|(kernel, scop)| sweep_request_line(&format!("c{c}/{kernel}"), kernel, scop))
                .collect()
        })
        .collect()
}

/// The presets the fleet harness rotates through — a diverse slice of
/// the grid (distinct cost functions and cache layouts), kept small so
/// 100-client runs stay fast.
const FLEET_PRESETS: [&str; 4] = ["pluto", "feautrier", "isl_like", "wavefront"];

/// Request streams for the fleet harness: `clients` streams of
/// `per_client` single-preset requests each, kernels and presets
/// rotated so concurrent clients hit overlapping SCoPs under different
/// configurations (the registry-sharing worst case for bit-identity).
/// Ids are `c<client>/r<i>/<kernel>/<preset>`, so a response correlates
/// back to its exact (kernel, preset) golden run.
pub fn fleet_request_streams(clients: usize, per_client: usize) -> Vec<Vec<String>> {
    let kernels = all_kernels();
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let (kernel, scop) = &kernels[(c + i) % kernels.len()];
                    let preset = FLEET_PRESETS[(c * 7 + i) % FLEET_PRESETS.len()];
                    request_line(
                        &format!("c{c}/r{i}/{kernel}/{preset}"),
                        kernel,
                        scop,
                        &[preset],
                    )
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_streams_rotate_kernels_and_presets() {
        let streams = fleet_request_streams(5, 3);
        assert_eq!(streams.len(), 5);
        let mut distinct = std::collections::BTreeSet::new();
        for (c, stream) in streams.iter().enumerate() {
            assert_eq!(stream.len(), 3);
            for (i, line) in stream.iter().enumerate() {
                let parsed = polytops_core::json::parse(line).unwrap();
                let obj = parsed.as_object().unwrap();
                assert_eq!(obj["op"].as_str(), Some("schedule"));
                let id = obj["id"].as_str().unwrap();
                assert!(id.starts_with(&format!("c{c}/r{i}/")));
                assert_eq!(obj["scenarios"].as_array().unwrap().len(), 1);
                // The id's kernel/preset suffix is the golden-run key.
                let mut parts = id.splitn(4, '/');
                let (_, _, kernel, preset) = (
                    parts.next().unwrap(),
                    parts.next().unwrap(),
                    parts.next().unwrap(),
                    parts.next().unwrap(),
                );
                assert_eq!(obj["name"].as_str(), Some(kernel));
                assert!(FLEET_PRESETS.contains(&preset));
                distinct.insert((kernel.to_string(), preset.to_string()));
            }
        }
        // Rotation actually diversifies the mix.
        assert!(distinct.len() > 4, "kernels × presets should vary");
    }

    #[test]
    fn autotune_lines_are_single_line_and_deterministic() {
        let scop = crate::matmul();
        let a = autotune_request_line("t0", &scop, 6, 256);
        assert!(!a.contains('\n'));
        assert_eq!(a, autotune_request_line("t0", &scop, 6, 256));
        let parsed = polytops_core::json::parse(&a).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj["op"].as_str(), Some("autotune"));
        assert_eq!(obj["max_candidates"].as_int(), Some(6));
        assert_eq!(obj["param_estimate"].as_int(), Some(256));
    }

    #[test]
    fn streams_cover_clients_and_kernels() {
        let streams = sweep_request_streams(3);
        assert_eq!(streams.len(), 3);
        for (c, stream) in streams.iter().enumerate() {
            assert_eq!(stream.len(), all_kernels().len());
            for line in stream {
                assert!(!line.contains('\n'), "one request per line");
                let parsed = polytops_core::json::parse(line).unwrap();
                let obj = parsed.as_object().unwrap();
                assert_eq!(obj["op"].as_str(), Some("schedule"));
                assert!(obj["id"].as_str().unwrap().starts_with(&format!("c{c}/")));
                assert_eq!(
                    obj["scenarios"].as_array().unwrap().len(),
                    preset_grid().len()
                );
            }
        }
    }
}
