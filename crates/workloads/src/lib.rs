//! Reference polyhedral kernels used across the PolyTOPS test suites and
//! benchmarks.
//!
//! Every function builds a small, well-known SCoP with
//! [`polytops_ir::ScopBuilder`]; the kernels cover the scheduling
//! behaviours the paper exercises: loop-carried chains (skew-free
//! pipelining), 3-deep compute nests (permutation), producer/consumer
//! pairs (fusion), and time-iterated stencils (skewing candidates).
//! [`sweep`] crosses them with the preset grid into the standard
//! scenario sweep for the scenario engine, [`requests`] replays
//! that sweep as N simulated `polytopsd` client streams, and
//! [`synthetic`] generates parameterized large SCoPs (statement-count
//! scaling) for the heuristic fast path to be fast on.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod requests;
pub mod sweep;
pub mod synthetic;

use polytops_ir::{Aff, Scop, ScopBuilder};

/// `for (i = 1; i < N; i++) A[i] = A[i-1];`
///
/// A single loop-carried flow dependence chain: the only legal 1-d
/// schedules advance with `i`, so the outer dimension must carry.
pub fn stencil_chain() -> Scop {
    let mut b = ScopBuilder::new("stencil_chain");
    let n = b.param("N");
    let a = b.array("A", &[n.clone()], 8);
    b.open_loop("i", Aff::val(1), n - 1);
    b.stmt("S0")
        .read(a, &[Aff::var("i") - 1])
        .write(a, &[Aff::var("i")])
        .text("A[i] = A[i-1];")
        .add(&mut b);
    b.close_loop();
    b.build().expect("stencil_chain builds")
}

/// `for i for j for k C[i][j] = C[i][j] + A[i][k] * B[k][j];`
///
/// The classic matmul 3-deep nest: self dependences on `C` along `k`.
pub fn matmul() -> Scop {
    let mut b = ScopBuilder::new("matmul");
    let n = b.param("N");
    let a = b.array("A", &[n.clone(), n.clone()], 8);
    let bb = b.array("B", &[n.clone(), n.clone()], 8);
    let c = b.array("C", &[n.clone(), n.clone()], 8);
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.open_loop("j", Aff::val(0), n.clone() - 1);
    b.open_loop("k", Aff::val(0), n - 1);
    b.stmt("S0")
        .read(c, &[Aff::var("i"), Aff::var("j")])
        .read(a, &[Aff::var("i"), Aff::var("k")])
        .read(bb, &[Aff::var("k"), Aff::var("j")])
        .write(c, &[Aff::var("i"), Aff::var("j")])
        .ops(2)
        .text("C[i][j] = C[i][j] + A[i][k] * B[k][j];")
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.build().expect("matmul builds")
}

/// Two separately-nested statements with a producer/consumer dependence:
///
/// ```c
/// for (i = 0; i < N; i++) B[i] = A[i];   // S0
/// for (j = 0; j < N; j++) C[j] = B[j];   // S1
/// ```
///
/// A fusion candidate: the flow dependence on `B` allows (and proximity
/// rewards) fusing both loops into one.
pub fn producer_consumer() -> Scop {
    let mut b = ScopBuilder::new("producer_consumer");
    let n = b.param("N");
    let a = b.array("A", &[n.clone()], 8);
    let bb = b.array("B", &[n.clone()], 8);
    let c = b.array("C", &[n.clone()], 8);
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.stmt("S0")
        .read(a, &[Aff::var("i")])
        .write(bb, &[Aff::var("i")])
        .text("B[i] = A[i];")
        .add(&mut b);
    b.close_loop();
    b.open_loop("j", Aff::val(0), n - 1);
    b.stmt("S1")
        .read(bb, &[Aff::var("j")])
        .write(c, &[Aff::var("j")])
        .text("C[j] = B[j];")
        .add(&mut b);
    b.close_loop();
    b.build().expect("producer_consumer builds")
}

/// A producer/consumer pair whose consumer reads the producer's output
/// *reversed*:
///
/// ```c
/// for (i = 0; i < N; i++) B[i] = A[i];        // S0
/// for (j = 0; j < N; j++) C[j] = B[N-1-j];    // S1
/// ```
///
/// No legal affine row can fuse the two loops (the dependence `i = N-1-j`
/// reverses orientation across the nest), so the scheduler must
/// distribute — this is the canonical exercise of the SCC-cut fallback.
pub fn reversed_consumer() -> Scop {
    let mut b = ScopBuilder::new("reversed_consumer");
    let n = b.param("N");
    let a = b.array("A", &[n.clone()], 8);
    let bb = b.array("B", &[n.clone()], 8);
    let c = b.array("C", &[n.clone()], 8);
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.stmt("S0")
        .read(a, &[Aff::var("i")])
        .write(bb, &[Aff::var("i")])
        .text("B[i] = A[i];")
        .add(&mut b);
    b.close_loop();
    b.open_loop("j", Aff::val(0), n.clone() - 1);
    b.stmt("S1")
        .read(bb, &[n - 1 - Aff::var("j")])
        .write(c, &[Aff::var("j")])
        .text("C[j] = B[N-1-j];")
        .add(&mut b);
    b.close_loop();
    b.build().expect("reversed_consumer builds")
}

/// `for t for i A[i] = A[i-1] + A[i] + A[i+1];`
///
/// An in-place Jacobi-style stencil with bidirectional space dependences
/// carried by the time loop — a skewing candidate.
pub fn jacobi_1d() -> Scop {
    let mut b = ScopBuilder::new("jacobi_1d");
    let t = b.param("T");
    let n = b.param("N");
    let a = b.array("A", &[n.clone()], 8);
    b.open_loop("t", Aff::val(0), t - 1);
    b.open_loop("i", Aff::val(1), n - 2);
    b.stmt("S0")
        .read(a, &[Aff::var("i") - 1])
        .read(a, &[Aff::var("i")])
        .read(a, &[Aff::var("i") + 1])
        .write(a, &[Aff::var("i")])
        .ops(2)
        .text("A[i] = A[i-1] + A[i] + A[i+1];")
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.build().expect("jacobi_1d builds")
}

/// `for t for i for j A[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];`
///
/// An in-place 2-d heat/Seidel-style stencil: bidirectional space
/// dependences in both `i` and `j` carried by the time loop. The 3-deep
/// skewing candidate of the suite (jacobi_1d's big sibling) and the
/// autotuner's hardest locality case — untiled, every sweep of the
/// plane streams the whole array between reuses.
pub fn heat_2d() -> Scop {
    let mut b = ScopBuilder::new("heat_2d");
    let t = b.param("T");
    let n = b.param("N");
    let a = b.array("A", &[n.clone(), n.clone()], 8);
    b.open_loop("t", Aff::val(0), t - 1);
    b.open_loop("i", Aff::val(1), n.clone() - 2);
    b.open_loop("j", Aff::val(1), n - 2);
    b.stmt("S0")
        .read(a, &[Aff::var("i") - 1, Aff::var("j")])
        .read(a, &[Aff::var("i") + 1, Aff::var("j")])
        .read(a, &[Aff::var("i"), Aff::var("j") - 1])
        .read(a, &[Aff::var("i"), Aff::var("j") + 1])
        .write(a, &[Aff::var("i"), Aff::var("j")])
        .ops(3)
        .text("A[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];")
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.build().expect("heat_2d builds")
}

/// The PolyBench `gemver` composite: a rank-2 update feeding two
/// matrix-vector products through a vector update.
///
/// ```c
/// for (i) for (j) A[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j];  // S0
/// for (i) for (j) x[i] = x[i] + A[j][i] * y[j];                   // S1
/// for (i)         x[i] = x[i] + z[i];                             // S2
/// for (i) for (j) w[i] = w[i] + A[i][j] * x[j];                   // S3
/// ```
///
/// Four statements chained by flow dependences on `A` (transposed in
/// S1) and `x`: the fusion/distribution stress case of the sweep, with
/// per-statement parallel outer loops once distributed.
pub fn gemver() -> Scop {
    let mut b = ScopBuilder::new("gemver");
    let n = b.param("N");
    let a = b.array("A", &[n.clone(), n.clone()], 8);
    let u1 = b.array("u1", &[n.clone()], 8);
    let v1 = b.array("v1", &[n.clone()], 8);
    let u2 = b.array("u2", &[n.clone()], 8);
    let v2 = b.array("v2", &[n.clone()], 8);
    let x = b.array("x", &[n.clone()], 8);
    let y = b.array("y", &[n.clone()], 8);
    let z = b.array("z", &[n.clone()], 8);
    let w = b.array("w", &[n.clone()], 8);
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.open_loop("j", Aff::val(0), n.clone() - 1);
    b.stmt("S0")
        .read(a, &[Aff::var("i"), Aff::var("j")])
        .read(u1, &[Aff::var("i")])
        .read(v1, &[Aff::var("j")])
        .read(u2, &[Aff::var("i")])
        .read(v2, &[Aff::var("j")])
        .write(a, &[Aff::var("i"), Aff::var("j")])
        .ops(4)
        .text("A[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j];")
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.open_loop("j", Aff::val(0), n.clone() - 1);
    b.stmt("S1")
        .read(x, &[Aff::var("i")])
        .read(a, &[Aff::var("j"), Aff::var("i")])
        .read(y, &[Aff::var("j")])
        .write(x, &[Aff::var("i")])
        .ops(2)
        .text("x[i] = x[i] + A[j][i] * y[j];")
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.stmt("S2")
        .read(x, &[Aff::var("i")])
        .read(z, &[Aff::var("i")])
        .write(x, &[Aff::var("i")])
        .ops(1)
        .text("x[i] = x[i] + z[i];")
        .add(&mut b);
    b.close_loop();
    b.open_loop("i", Aff::val(0), n.clone() - 1);
    b.open_loop("j", Aff::val(0), n - 1);
    b.stmt("S3")
        .read(w, &[Aff::var("i")])
        .read(a, &[Aff::var("i"), Aff::var("j")])
        .read(x, &[Aff::var("j")])
        .write(w, &[Aff::var("i")])
        .ops(2)
        .text("w[i] = w[i] + A[i][j] * x[j];")
        .add(&mut b);
    b.close_loop();
    b.close_loop();
    b.build().expect("gemver builds")
}

/// All kernels with their names, for sweep-style tests and benchmarks.
pub fn all_kernels() -> Vec<(&'static str, Scop)> {
    vec![
        ("stencil_chain", stencil_chain()),
        ("matmul", matmul()),
        ("producer_consumer", producer_consumer()),
        ("reversed_consumer", reversed_consumer()),
        ("jacobi_1d", jacobi_1d()),
        ("heat_2d", heat_2d()),
        ("gemver", gemver()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_with_expected_shapes() {
        assert_eq!(stencil_chain().statements.len(), 1);
        assert_eq!(stencil_chain().max_depth(), 1);
        assert_eq!(matmul().max_depth(), 3);
        assert_eq!(producer_consumer().statements.len(), 2);
        assert_eq!(reversed_consumer().statements.len(), 2);
        assert_eq!(jacobi_1d().nparams(), 2);
        assert_eq!(heat_2d().max_depth(), 3);
        assert_eq!(heat_2d().nparams(), 2);
        assert_eq!(gemver().statements.len(), 4);
        assert_eq!(gemver().max_depth(), 2);
        assert_eq!(all_kernels().len(), 7);
    }

    #[test]
    fn kernels_are_fully_affine() {
        for (name, scop) in all_kernels() {
            assert!(scop.is_fully_affine(), "{name} must be affine");
        }
    }
}
