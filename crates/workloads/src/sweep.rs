//! The standard scenario sweep: every reference kernel crossed with the
//! preset configuration grid, packaged as a ready-to-run
//! [`ScenarioSet`].
//!
//! This is the workload driver for the scenario engine
//! ([`polytops_core::scenario`]): benchmarks, tests and the demo all
//! build their sweeps here so "the suite" means the same thing
//! everywhere. Scenario names are `<kernel>/<preset>`; every kernel is
//! registered once and referenced by all of its scenarios, which is what
//! lets the engine share one Farkas cache across a kernel's whole
//! configuration column.

use polytops_core::scenario::ScenarioSet;
use polytops_core::{presets, SchedulerConfig};

use crate::{all_kernels, synthetic};

/// Statement count of the synthetic chain instance registered in the
/// standard sweep: large enough that the joint ILP visibly dominates
/// (the fast-path benchmark uses bigger sizes), small enough that the
/// pure-ILP presets stay test-suite friendly.
pub const SWEEP_CHAIN_LEN: usize = 12;

/// The preset grid every kernel is swept over: the paper's Table I
/// presets plus the post-processing (tiling + wavefront) variant and
/// the heuristic fast path.
pub fn preset_grid() -> Vec<(&'static str, SchedulerConfig)> {
    vec![
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
        ("isl_like", presets::isl_like()),
        ("wavefront", presets::wavefront()),
        ("fast_path", presets::fast_path()),
    ]
}

/// Builds the full standard sweep: ([`all_kernels`] plus the sized
/// [`synthetic::long_chain`] instance) × [`preset_grid`]
/// (8 kernels × 5 presets = 40 scenarios).
pub fn standard_sweep() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    let mut kernels = all_kernels();
    kernels.push(("long_chain_12", synthetic::long_chain(SWEEP_CHAIN_LEN)));
    for (kernel, scop) in kernels {
        let id = set.add_scop(kernel, scop);
        for (preset, config) in preset_grid() {
            set.add_scenario(id, format!("{kernel}/{preset}"), config);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_sweep_covers_the_grid() {
        let set = standard_sweep();
        assert_eq!(set.scops().len(), 8);
        assert_eq!(set.len(), 8 * preset_grid().len());
        assert!(set.scenarios().iter().any(|s| s.name == "matmul/wavefront"));
        assert!(set
            .scenarios()
            .iter()
            .any(|s| s.name == "long_chain_12/fast_path"));
        assert!(set
            .scenarios()
            .iter()
            .any(|s| s.name == "heat_2d/wavefront"));
        assert!(set.scenarios().iter().any(|s| s.name == "gemver/pluto"));
    }
}
