//! The standard scenario sweep: every reference kernel crossed with the
//! preset configuration grid, packaged as a ready-to-run
//! [`ScenarioSet`].
//!
//! This is the workload driver for the scenario engine
//! ([`polytops_core::scenario`]): benchmarks, tests and the demo all
//! build their sweeps here so "the suite" means the same thing
//! everywhere. Scenario names are `<kernel>/<preset>`; every kernel is
//! registered once and referenced by all of its scenarios, which is what
//! lets the engine share one Farkas cache across a kernel's whole
//! configuration column.

use polytops_core::scenario::ScenarioSet;
use polytops_core::{presets, SchedulerConfig};

use crate::all_kernels;

/// The preset grid every kernel is swept over: the paper's Table I
/// presets plus the post-processing (tiling + wavefront) variant.
pub fn preset_grid() -> Vec<(&'static str, SchedulerConfig)> {
    vec![
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
        ("isl_like", presets::isl_like()),
        ("wavefront", presets::wavefront()),
    ]
}

/// Builds the full standard sweep: [`all_kernels`] × [`preset_grid`]
/// (7 kernels × 4 presets = 28 scenarios).
pub fn standard_sweep() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (kernel, scop) in all_kernels() {
        let id = set.add_scop(kernel, scop);
        for (preset, config) in preset_grid() {
            set.add_scenario(id, format!("{kernel}/{preset}"), config);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_sweep_covers_the_grid() {
        let set = standard_sweep();
        assert_eq!(set.scops().len(), 7);
        assert_eq!(set.len(), 7 * preset_grid().len());
        assert!(set.scenarios().iter().any(|s| s.name == "matmul/wavefront"));
        assert!(set
            .scenarios()
            .iter()
            .any(|s| s.name == "heat_2d/wavefront"));
        assert!(set.scenarios().iter().any(|s| s.name == "gemver/pluto"));
    }
}
