//! Parameterized synthetic SCoP generators for large-SCoP scaling work.
//!
//! The reference kernels ([`crate::all_kernels`]) are all small — a
//! handful of statements at most — so nothing in the suite exercised
//! the regime the heuristic fast path exists for: SCoPs whose joint ILP
//! couples *hundreds* of statements. These generators build such SCoPs
//! at any requested size:
//!
//! * [`long_chain`] — `n` single-loop statements chained by flow
//!   dependences (statement `k` reads what statement `k-1` wrote, at
//!   the same and the previous index), the "N-statement stencil chain"
//!   shape;
//! * [`wide_scop`] — `n` independent 2-deep nests over disjoint arrays:
//!   no dependences at all, so cost is pure ILP-width.
//!
//! Both are fully affine and legal under the identity schedule, which
//! is exactly what makes them fast-path showcases: the
//! dimension-matching proposal validates in one pass, while the ILP
//! cascade pays a simplex whose column count grows with `n`.

use polytops_ir::{Aff, Scop, ScopBuilder};

/// A chain of `n` single-loop statements, each reading its
/// predecessor's output array at the same and the previous index:
///
/// ```c
/// for (i = 1; i < N; i++) A1[i] = A0[i] + A0[i-1];   // S0
/// for (i = 1; i < N; i++) A2[i] = A1[i] + A1[i-1];   // S1
/// ...
/// ```
///
/// `n - 1` pairs of forward flow dependences, no loop-carried ones: the
/// identity schedule is legal, every loop is parallel once distributed,
/// and proximity rewards fusing the whole chain.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn long_chain(n: usize) -> Scop {
    assert!(n > 0, "long_chain needs at least one statement");
    let mut b = ScopBuilder::new(&format!("long_chain_{n}"));
    let nn = b.param("N");
    let arrays: Vec<_> = (0..=n)
        .map(|k| b.array(&format!("A{k}"), &[nn.clone()], 8))
        .collect();
    for k in 0..n {
        b.open_loop("i", Aff::val(1), nn.clone() - 1);
        b.stmt(&format!("S{k}"))
            .read(arrays[k], &[Aff::var("i")])
            .read(arrays[k], &[Aff::var("i") - 1])
            .write(arrays[k + 1], &[Aff::var("i")])
            .text(&format!("A{}[i] = A{k}[i] + A{k}[i-1];", k + 1))
            .add(&mut b);
        b.close_loop();
    }
    b.build().expect("long_chain builds")
}

/// `n` independent 2-deep nests over disjoint arrays:
///
/// ```c
/// for (i) for (j) B0[i][j] = B0[i][j] + 1;   // S0
/// for (i) for (j) B1[i][j] = B1[i][j] + 1;   // S1
/// ...
/// ```
///
/// Each statement has only a self output dependence at equal indices
/// (distance zero), so everything is trivially parallel — the SCoP
/// measures how solve cost scales with pure statement *width*.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wide_scop(n: usize) -> Scop {
    assert!(n > 0, "wide_scop needs at least one statement");
    let mut b = ScopBuilder::new(&format!("wide_scop_{n}"));
    let nn = b.param("N");
    for k in 0..n {
        let a = b.array(&format!("B{k}"), &[nn.clone(), nn.clone()], 8);
        b.open_loop("i", Aff::val(0), nn.clone() - 1);
        b.open_loop("j", Aff::val(0), nn.clone() - 1);
        b.stmt(&format!("S{k}"))
            .read(a, &[Aff::var("i"), Aff::var("j")])
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .text(&format!("B{k}[i][j] = B{k}[i][j] + 1;"))
            .add(&mut b);
        b.close_loop();
        b.close_loop();
    }
    b.build().expect("wide_scop builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_scale_and_stay_affine() {
        let chain = long_chain(32);
        assert_eq!(chain.statements.len(), 32);
        assert_eq!(chain.max_depth(), 1);
        assert!(chain.is_fully_affine());
        let wide = wide_scop(12);
        assert_eq!(wide.statements.len(), 12);
        assert_eq!(wide.max_depth(), 2);
        assert!(wide.is_fully_affine());
    }

    #[test]
    fn long_chain_has_forward_flow_dependences() {
        let deps = polytops_deps::analyze(&long_chain(4));
        // Two reads of the predecessor array per statement, three pairs.
        assert_eq!(deps.len(), 6);
        assert!(deps.iter().all(|d| d.src.0 + 1 == d.dst.0));
    }

    #[test]
    fn wide_scop_has_only_self_dependences() {
        let deps = polytops_deps::analyze(&wide_scop(5));
        assert!(deps.iter().all(|d| d.src == d.dst));
    }
}
