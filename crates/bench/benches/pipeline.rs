fn main() {}
