//! Full-pipeline benchmark: dependence analysis, scheduling and legality
//! verification end to end on each reference kernel.

use polytops_bench::bench_fn;
use polytops_core::SchedulerConfig;
use polytops_deps::{analyze, schedule_respects_dependence};

fn main() {
    let cfg = SchedulerConfig::default();
    for (kernel, scop) in polytops_workloads::all_kernels() {
        bench_fn(&format!("pipeline/{kernel}"), || {
            let deps = analyze(&scop);
            let sched = polytops_core::schedule(&scop, &cfg).expect("kernel schedules");
            for dep in &deps {
                assert!(schedule_respects_dependence(
                    dep,
                    sched.stmt(dep.src).rows(),
                    sched.stmt(dep.dst).rows(),
                ));
            }
            sched
        });
    }
}
