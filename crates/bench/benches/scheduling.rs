//! Scheduling-only benchmark: `polytops_core::schedule` on each
//! reference kernel under the Pluto-like and Feautrier-like presets.

use polytops_bench::bench_fn;
use polytops_core::presets;

fn main() {
    let configs = [
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
    ];
    for (kernel, scop) in polytops_workloads::all_kernels() {
        for (cname, cfg) in &configs {
            bench_fn(&format!("schedule/{kernel}/{cname}"), || {
                polytops_core::schedule(&scop, cfg).expect("kernel schedules")
            });
        }
    }
}
