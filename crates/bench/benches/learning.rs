//! Learning-loop benchmark: what closing the model-reality loop buys.
//!
//! Three measurements, each with its contract **asserted** before any
//! number is reported:
//!
//! 1. **Cold vs remembered-winner latency.** For every reference kernel
//!    the first registry-backed exploration pays the full candidate
//!    sweep; the re-submission must be served from the learned store
//!    (`learned == true`, `explored_scenarios == 0`) with a
//!    byte-identical winner — and the bench reports how much cheaper
//!    that warm serve is.
//! 2. **Calibrated vs uncalibrated winner quality.** A ground-truth
//!    machine with a deliberately expensive memory system prices both
//!    tuners' picks: tuning under the calibration-fitted model must
//!    match or beat tuning under the stock constants (same candidate
//!    lattice, so the calibrated pick is the lattice optimum under
//!    ground truth).
//! 3. **Calibration determinism.** Two synthetic-timer calibration
//!    passes must be bit-identical and recover the ground-truth
//!    constants exactly.
//!
//! Results land in the `"learning"` section of `BENCH_schedule.json`
//! (other sections are preserved).

use std::time::Instant;

use polytops_bench::report::{int, object, ratio};
use polytops_bench::{bench_ns, report};
use polytops_core::json::Json;
use polytops_core::registry::ScopRegistry;
use polytops_core::tune::{self, MachineModel, TuneBudget};
use polytops_machine::calibrate::{calibrate, SyntheticTimer};
use polytops_workloads::all_kernels;

fn main() {
    let budget = TuneBudget::default();

    // --- Calibration: determinism, exact recovery, and cost. --------
    let truth = MachineModel {
        miss_penalty_cycles: 240, // a 10x pricier memory system than stock
        sync_cycles: 9000,
        ..MachineModel::default()
    };
    let timer = SyntheticTimer {
        ground_truth: truth.clone(),
    };
    let base = MachineModel::default();
    let first_pass = calibrate(&base, &timer).expect("synthetic timing never fails");
    let second_pass = calibrate(&base, &timer).expect("synthetic timing never fails");
    assert_eq!(
        first_pass, second_pass,
        "synthetic calibration must be bit-deterministic"
    );
    assert_eq!(
        first_pass.miss_penalty_cycles, truth.miss_penalty_cycles,
        "the fit must recover the ground-truth miss penalty exactly"
    );
    assert_eq!(
        first_pass.sync_cycles, truth.sync_cycles,
        "the fit must recover the ground-truth sync cost exactly"
    );
    let calibrated = first_pass.machine.clone();
    let calibrate_ns = bench_ns(|| calibrate(&base, &timer));
    println!(
        "calibration: recovered miss={} sync={} ({calibrate_ns} ns/pass)",
        first_pass.miss_penalty_cycles, first_pass.sync_cycles
    );

    // --- Per kernel: cold vs warm latency, calibrated vs stock pick. -
    let kernels = all_kernels();
    let registry = ScopRegistry::new(kernels.len());
    let mut entries: Vec<Json> = Vec::new();
    let mut total_cold_ns: u128 = 0;
    let mut total_warm_ns: u128 = 0;
    let mut calibration_wins = 0usize;
    for (kernel, scop) in &kernels {
        let (entry, _) = registry.resolve(kernel, scop);

        // Cold: the full exploration, learning the winner as it goes.
        let t0 = Instant::now();
        let cold = tune::explore_entry(&entry, &calibrated, &budget).expect("kernel tunes");
        let cold_ns = t0.elapsed().as_nanos();
        assert!(cold.certified, "{kernel}: winner must be oracle-legal");
        assert!(!cold.learned, "{kernel}: first sight cannot be warm");
        assert!(cold.explored_scenarios > 0, "{kernel}");

        // Warm: served from the learned store, byte-identically.
        let warm_ns = bench_ns(|| {
            let warm = tune::explore_entry(&entry, &calibrated, &budget).expect("warm serve");
            assert!(warm.learned, "{kernel}: re-submission must be warm");
            assert_eq!(warm.explored_scenarios, 0, "{kernel}");
            assert_eq!(warm.winner.name, cold.winner.name, "{kernel}");
            assert_eq!(
                warm.winner.schedule, cold.winner.schedule,
                "{kernel}: the remembered winner must be byte-identical"
            );
            assert_eq!(warm.score, cold.score, "{kernel}");
            warm
        });
        total_cold_ns += cold_ns;
        total_warm_ns += warm_ns;

        // Quality: price both tuners' picks under the ground truth.
        let stock = tune::explore(scop, &base, &budget).expect("stock tune");
        let (_, stock_gt) =
            tune::score_schedule(scop, &stock.winner.schedule, &truth, budget.param_estimate);
        let (_, calibrated_gt) =
            tune::score_schedule(scop, &cold.winner.schedule, &truth, budget.param_estimate);
        assert!(
            calibrated_gt >= stock_gt,
            "{kernel}: the calibrated pick ({calibrated_gt}) must match or beat \
             the stock pick ({stock_gt}) under ground truth"
        );
        if calibrated_gt > stock_gt {
            calibration_wins += 1;
        }

        let speedup = cold_ns as f64 / warm_ns.max(1) as f64;
        println!(
            "{kernel:<20} cold {:>10.2} ms  warm {:>10.3} ms  ({speedup:>6.1}x)  winner {}",
            cold_ns as f64 / 1e6,
            warm_ns as f64 / 1e6,
            cold.winner.name
        );
        entries.push(object([
            ("kernel", Json::Str((*kernel).to_string())),
            ("cold_ns", int(cold_ns as i64)),
            ("warm_ns", int(warm_ns as i64)),
            ("warm_speedup", ratio(speedup)),
            ("winner", Json::Str(cold.winner.name.clone())),
            ("explored_cold", int(cold.explored_scenarios as i64)),
            ("stock_gt_score", int(stock_gt)),
            ("calibrated_gt_score", int(calibrated_gt)),
            ("calibration_improved", Json::Bool(calibrated_gt > stock_gt)),
        ]));
    }

    let count = kernels.len();
    let overall_speedup = total_cold_ns as f64 / total_warm_ns.max(1) as f64;
    println!(
        "learning: warm serves {overall_speedup:.1}x cheaper than cold across {count} kernels; \
         calibration improved the pick on {calibration_wins}/{count}"
    );

    let out = report::default_path();
    report::update_section(
        &out,
        "learning",
        object([
            (
                "calibration",
                object([
                    ("deterministic", Json::Bool(true)),
                    ("exact_recovery", Json::Bool(true)),
                    (
                        "miss_penalty_cycles",
                        int(i64::from(first_pass.miss_penalty_cycles)),
                    ),
                    ("sync_cycles", int(i64::from(first_pass.sync_cycles))),
                    ("calibrate_ns", int(calibrate_ns as i64)),
                ]),
            ),
            ("kernels", int(count as i64)),
            ("cold_ns_total", int(total_cold_ns as i64)),
            ("warm_ns_total", int(total_warm_ns as i64)),
            ("warm_speedup", ratio(overall_speedup)),
            ("calibration_wins", int(calibration_wins as i64)),
            (
                "calibration_win_rate",
                ratio(calibration_wins as f64 / count.max(1) as f64),
            ),
            ("entries", Json::Array(entries)),
        ]),
    );
    println!("-> {out}");
}
