//! Cost-model benchmark: the autotuner's pick against the default
//! preset, per reference kernel, under the static performance model.
//!
//! For every kernel of the standard sweep this bench
//!
//! 1. schedules the kernel under the default preset (`pluto`) and
//!    scores the result with the model;
//! 2. runs the autotuner ([`polytops_core::tune::explore`]) over the
//!    machine-derived candidate lattice;
//! 3. **asserts** the three contracts of the subsystem before any
//!    number is reported: the winner is oracle-certified, the winner's
//!    model score matches or beats the default preset's, and the
//!    selection (winner name, score, schedule bytes, every candidate
//!    score) is bit-identical between a 1-thread and a multi-thread
//!    exploration.
//!
//! Results land in the `"model"` section of `BENCH_schedule.json`
//! (other sections are preserved).

use std::time::Instant;

use polytops_bench::report::{self, int, object, ratio};
use polytops_core::json::Json;
use polytops_core::tune::{self, MachineModel, TuneBudget};
use polytops_core::{presets, schedule};
use polytops_workloads::all_kernels;

fn main() {
    let machine = MachineModel::default();
    let budget = TuneBudget::default();
    let serial = TuneBudget {
        threads: 1,
        ..budget.clone()
    };

    let mut entries: Vec<Json> = Vec::new();
    let mut tuned_wins = 0usize;
    let mut total_explore_ns: u128 = 0;
    for (kernel, scop) in all_kernels() {
        // The comparison baseline: the default preset, scored by the
        // same model the tuner optimizes.
        let default_sched = schedule(&scop, &presets::pluto()).expect("default preset schedules");
        let (_, default_score) =
            tune::score_schedule(&scop, &default_sched, &machine, budget.param_estimate);

        let t0 = Instant::now();
        let outcome = tune::explore(&scop, &machine, &budget).expect("kernel tunes");
        let explore_ns = t0.elapsed().as_nanos();
        total_explore_ns += explore_ns;

        assert!(outcome.certified, "{kernel}: winner must be oracle-legal");
        assert!(
            outcome.score >= default_score,
            "{kernel}: tuned score {} must match or beat default {}",
            outcome.score,
            default_score
        );
        let one = tune::explore(&scop, &machine, &serial).expect("kernel tunes serially");
        assert_eq!(one.winner.name, outcome.winner.name, "{kernel}");
        assert_eq!(
            one.winner.schedule, outcome.winner.schedule,
            "{kernel}: selection must be bit-identical across thread counts"
        );
        assert_eq!(one.score, outcome.score, "{kernel}");
        assert_eq!(one.candidates, outcome.candidates, "{kernel}");

        if outcome.score > default_score {
            tuned_wins += 1;
        }
        println!(
            "{kernel:<20} default {default_score:>14}  tuned {:>14}  winner {:<22} ({:.1} ms)",
            outcome.score,
            outcome.winner.name,
            explore_ns as f64 / 1e6
        );
        entries.push(report::object([
            ("kernel", Json::Str(kernel.to_string())),
            ("default_score", int(default_score)),
            ("tuned_score", int(outcome.score)),
            ("winner", Json::Str(outcome.winner.name.clone())),
            ("improved", Json::Bool(outcome.score > default_score)),
            ("certified", Json::Bool(outcome.certified)),
            (
                "outer_parallel",
                Json::Bool(outcome.features.outer_parallel),
            ),
            ("tiled", Json::Bool(outcome.features.tiled)),
            ("explore_ns", int(explore_ns as i64)),
        ]));
    }

    let kernels = entries.len();
    println!(
        "model: tuned schedule beat the default preset on {tuned_wins}/{kernels} kernels \
         ({:.1} ms total exploration)",
        total_explore_ns as f64 / 1e6
    );

    let out = report::default_path();
    report::update_section(
        &out,
        "model",
        object([
            (
                "machine",
                object([
                    ("num_cores", int(i64::from(machine.num_cores))),
                    ("cache_bytes", int(machine.cache_bytes as i64)),
                    ("vector_bytes", int(i64::from(machine.vector_bytes))),
                    ("cache_line_bytes", int(i64::from(machine.cache_line_bytes))),
                ]),
            ),
            ("param_estimate", int(budget.param_estimate)),
            ("candidates_per_kernel", int(budget.max_candidates as i64)),
            ("threads", int(budget.threads as i64)),
            ("kernels", int(kernels as i64)),
            ("tuned_wins", int(tuned_wins as i64)),
            ("win_rate", ratio(tuned_wins as f64 / kernels.max(1) as f64)),
            ("deterministic", Json::Bool(true)),
            ("all_certified", Json::Bool(true)),
            ("explore_ns_total", int(total_explore_ns as i64)),
            ("entries", Json::Array(entries)),
        ]),
    );
    println!("-> {out}");
}
