//! Fleet benchmark: the `polytopsd` serving layer under fire.
//!
//! Three phases, every number asserted before it is reported:
//!
//! 1. **100-client kill/restart** — 100 concurrent clients drive
//!    single-preset requests through a daemon scripted to crash after
//!    its second admission window; a second generation takes over the
//!    same listener (socket-activation handoff) and restores the
//!    registry from the journal. Every client's answer must be
//!    bit-identical to the offline engine, and a post-restart probe of
//!    every distinct (kernel, preset) must replay with **zero** fresh
//!    Farkas eliminations.
//! 2. **Graceful rotation** — the second generation shuts down
//!    (rotating a full snapshot); a third boots from the snapshot alone
//!    and must serve every probe warm. Its startup time is the
//!    restore+prewarm cost a restart actually pays.
//! 3. **Router pass-through** — two fresh shards behind a
//!    consistent-hash router, versus one fresh direct daemon: responses
//!    must be byte-identical (`results` field), with both shards
//!    serving a share.
//!
//! Results land in the `"fleet"` section of `BENCH_schedule.json`
//! (other sections are preserved).

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use polytops_bench::report::{self, int, object, ratio};
use polytops_core::json::{self, Json};
use polytops_server::protocol::{self, Request};
use polytops_server::{
    Client, FaultPlan, RetryClient, RetryPolicy, Router, RouterConfig, Server, ServerConfig,
};
use polytops_workloads::requests::fleet_request_streams;

fn patient() -> RetryPolicy {
    RetryPolicy {
        attempts: 120,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(250),
    }
}

/// (registry hit, total farkas misses, results compact text).
fn unpack(response: &str) -> (bool, i64, String) {
    let parsed = json::parse(response).expect("response parses");
    let obj = parsed.as_object().expect("response object");
    assert_eq!(obj["ok"].as_bool(), Some(true), "daemon error: {response}");
    let hit = obj["registry"].as_object().unwrap()["hit"]
        .as_bool()
        .unwrap();
    let misses = obj["stats"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| {
            e.as_object().unwrap()["pipeline"].as_object().unwrap()["farkas_misses"]
                .as_int()
                .unwrap()
        })
        .sum();
    (hit, misses, obj["results"].compact())
}

/// The `c<c>/r<i>/` prefix stripped from a fleet request id: the
/// `(kernel, preset)` key that indexes the offline golden runs.
fn golden_key(id: &str) -> &str {
    id.splitn(3, '/').nth(2).expect("fleet id shape")
}

/// Offline golden `results` per distinct (kernel, preset) in `streams`.
fn goldens(streams: &[Vec<String>]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in streams.iter().flatten() {
        let req = match protocol::parse_request(line).expect("request parses") {
            Request::Schedule(req) => req,
            other => panic!("fleet stream must be schedule requests, got {other:?}"),
        };
        let key = match &req.id {
            Json::Str(id) => golden_key(id).to_string(),
            other => panic!("fleet ids are strings, got {other:?}"),
        };
        map.entry(key)
            .or_insert_with(|| protocol::offline_results(&req).compact());
    }
    map
}

/// Checks one response against its golden run, returning the id.
fn check(line: &str, response: &str, golden: &BTreeMap<String, String>) {
    let (_, _, results) = unpack(response);
    let parsed = json::parse(line).unwrap();
    let id = parsed.as_object().unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let want = &golden[golden_key(&id)];
    assert_eq!(
        &results, want,
        "{id}: response must be bit-identical to the offline engine"
    );
}

fn main() {
    let dir = std::env::temp_dir().join(format!("polytops-fleet-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let snapshot_dir = dir.display().to_string();
    let fleet_config = || ServerConfig {
        window_ms: 2,
        snapshot_dir: Some(snapshot_dir.clone()),
        rotate_every: 64,
        ..ServerConfig::default()
    };

    // ---- phase 1: 100 clients through a kill/restart ----------------
    let clients = 100usize;
    let streams = fleet_request_streams(clients, 1);
    let golden = goldens(&streams);
    println!(
        "fleet: {clients} clients, {} distinct (kernel, preset) golden runs",
        golden.len()
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fleet port");
    let addr = listener.local_addr().unwrap().to_string();
    let first = Server::start_on(
        listener.try_clone().expect("clone listener"),
        ServerConfig {
            faults: FaultPlan {
                kill_after_batches: Some(2),
                ..FaultPlan::default()
            },
            ..fleet_config()
        },
    )
    .expect("start first generation");

    let t0 = Instant::now();
    let addr_ref: &str = &addr;
    let golden_ref = &golden;
    let (restart_ns, second) = std::thread::scope(|s| {
        let workers: Vec<_> = streams
            .iter()
            .map(|stream| {
                s.spawn(move || {
                    let mut client = RetryClient::new(addr_ref, patient());
                    for line in stream {
                        let response = client.roundtrip(line).expect("retry rides the restart");
                        check(line, &response, golden_ref);
                    }
                })
            })
            .collect();

        while !first.crashed() {
            std::thread::sleep(Duration::from_millis(2));
        }
        first.join();
        let t_restart = Instant::now();
        let second = Server::start_on(
            listener.try_clone().expect("clone listener"),
            fleet_config(),
        )
        .expect("start second generation");
        // start_on restores + prewarms synchronously: this is the
        // serve-warm restart cost.
        let restart_ns = t_restart.elapsed().as_nanos();

        for worker in workers {
            worker.join().expect("client thread");
        }
        (restart_ns, second)
    });
    let kill_restart_ns = t0.elapsed().as_nanos();
    let totals = second.persist_totals().expect("persistence enabled");
    assert!(totals.restored_entries > 0, "{totals:?}");
    println!(
        "fleet: {clients} clients survived the kill/restart in {} ms \
         (restart restored {} entries / {} layouts in {} ms)",
        kill_restart_ns / 1_000_000,
        totals.restored_entries,
        totals.prewarmed_layouts,
        restart_ns / 1_000_000
    );

    // Post-restart warm probe: every distinct (kernel, preset) replays
    // with zero fresh eliminations — the headline restart guarantee.
    let mut probe = Client::connect(second.addr()).expect("connect probe");
    let mut restart_warm_misses = 0i64;
    for stream in &streams {
        for line in stream {
            let response = probe.roundtrip(line).expect("warm probe");
            let (hit, misses, _) = unpack(&response);
            assert!(hit, "post-restart probe must be a registry hit");
            restart_warm_misses += misses;
            check(line, &response, &golden);
        }
    }
    assert_eq!(
        restart_warm_misses, 0,
        "restart-warm replay must not re-run any Farkas elimination"
    );
    println!("fleet: restart-warm probe over {clients} requests: farkas_misses == 0");

    // ---- phase 2: graceful rotation, third generation ---------------
    second.shutdown(); // rotates a full snapshot on the way out
    let t_gen3 = Instant::now();
    let third = Server::start_on(
        listener.try_clone().expect("clone listener"),
        fleet_config(),
    )
    .expect("start third generation");
    let snapshot_boot_ns = t_gen3.elapsed().as_nanos();
    let gen3 = third.persist_totals().expect("persistence enabled");
    assert!(gen3.restored_entries > 0, "{gen3:?}");
    assert_eq!(
        gen3.replayed_events, 0,
        "a graceful shutdown leaves everything in the snapshot: {gen3:?}"
    );
    let mut probe = Client::connect(third.addr()).expect("connect probe");
    let mut snapshot_warm_misses = 0i64;
    for line in streams.iter().flatten().take(golden.len()) {
        let response = probe.roundtrip(line).expect("snapshot probe");
        let (hit, misses, _) = unpack(&response);
        assert!(hit, "snapshot-booted probe must be a registry hit");
        snapshot_warm_misses += misses;
        check(line, &response, &golden);
    }
    assert_eq!(snapshot_warm_misses, 0, "snapshot boot must serve warm");
    third.shutdown();
    println!(
        "fleet: snapshot-only boot restored {} entries / {} layouts in {} ms, probes warm",
        gen3.restored_entries,
        gen3.prewarmed_layouts,
        snapshot_boot_ns / 1_000_000
    );

    // ---- phase 3: router pass-through vs direct daemon --------------
    let shard_a = Server::start(ServerConfig::default()).expect("shard a");
    let shard_b = Server::start(ServerConfig::default()).expect("shard b");
    let direct = Server::start(ServerConfig::default()).expect("direct daemon");
    let router = Router::start(RouterConfig {
        shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("router");
    let mut via_router = Client::connect(router.addr()).expect("connect router");
    let mut via_direct = Client::connect(direct.addr()).expect("connect direct");
    let router_streams = fleet_request_streams(4, 4);
    let mut routed_requests = 0i64;
    for line in router_streams.iter().flatten() {
        let routed = via_router.roundtrip(line).expect("routed");
        let straight = via_direct.roundtrip(line).expect("direct");
        let (_, _, routed_results) = unpack(&routed);
        let (_, _, direct_results) = unpack(&straight);
        assert_eq!(
            routed_results, direct_results,
            "router-fronted results must be byte-identical to the direct daemon"
        );
        routed_requests += 1;
    }
    let stats = via_router
        .roundtrip_json(r#"{"op":"stats"}"#)
        .expect("fleet stats");
    let shard_stats = stats.as_object().unwrap()["shards"].as_array().unwrap();
    let shard_requests: Vec<i64> = shard_stats
        .iter()
        .map(|s| s.as_object().unwrap()["requests"].as_int().unwrap())
        .collect();
    assert!(
        shard_requests.iter().all(|&r| r > 0),
        "both shards must serve a share: {shard_requests:?}"
    );
    println!(
        "fleet: {routed_requests} routed requests byte-identical to direct \
         (shard split {shard_requests:?})"
    );
    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
    direct.shutdown();

    let out = report::default_path();
    report::update_section(
        &out,
        "fleet",
        object([
            ("clients", int(clients as i64)),
            ("golden_runs", int(golden.len() as i64)),
            ("kill_restart_ns", int(kill_restart_ns as i64)),
            ("restart_restore_ns", int(restart_ns as i64)),
            ("snapshot_boot_ns", int(snapshot_boot_ns as i64)),
            ("restored_entries", int(totals.restored_entries as i64)),
            ("prewarmed_layouts", int(totals.prewarmed_layouts as i64)),
            ("snapshot_boot_layouts", int(gen3.prewarmed_layouts as i64)),
            ("restart_warm_farkas_misses", int(restart_warm_misses)),
            ("snapshot_warm_farkas_misses", int(snapshot_warm_misses)),
            ("routed_requests", int(routed_requests)),
            (
                "shard_split_min",
                int(*shard_requests.iter().min().unwrap()),
            ),
            (
                "restart_vs_boot",
                ratio(restart_ns as f64 / snapshot_boot_ns.max(1) as f64),
            ),
            ("bit_identical", Json::Bool(true)),
        ]),
    );
    println!("-> {out}");
    let _ = std::fs::remove_dir_all(&dir);
}
