//! Cold-vs-staged pipeline benchmark.
//!
//! Schedules every reference kernel twice per configuration:
//!
//! * **cold** — Farkas cache and warm-started solver disabled (every
//!   dimension re-eliminates every dependence and solves each
//!   lexicographic objective by full branch and bound from a rebuilt
//!   tableau);
//! * **staged** — the default pipeline: cached Farkas replay plus the
//!   incremental warm-started lexmin.
//!
//! Wall times land in the `"staged"` section of `BENCH_schedule.json`
//! (set `BENCH_OUT` to move it; the `"scenarios"` section written by
//! the scenarios bench is preserved); `BENCH_TARGET_MS` bounds the
//! per-measurement budget, which the CI smoke run sets low.

use polytops_bench::bench_ns;
use polytops_bench::report::{self, int, object, ratio};
use polytops_core::json::Json;
use polytops_core::{presets, schedule_with_options, EngineOptions};

fn main() {
    let cold_options = EngineOptions {
        farkas_cache: false,
        warm_start: false,
        ..EngineOptions::default()
    };
    let configs = [
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
    ];
    let mut rows = Vec::new();
    let (mut total_cold, mut total_staged) = (0u128, 0u128);
    for (kernel, scop) in polytops_workloads::all_kernels() {
        for (cname, cfg) in &configs {
            let cold = bench_ns(|| {
                schedule_with_options(&scop, cfg, &cold_options).expect("kernel schedules")
            });
            let staged = bench_ns(|| {
                schedule_with_options(&scop, cfg, &EngineOptions::default())
                    .expect("kernel schedules")
            });
            let (_, stats) = schedule_with_options(&scop, cfg, &EngineOptions::default()).unwrap();
            let (_, cold_stats) = schedule_with_options(&scop, cfg, &cold_options).unwrap();
            let speedup = cold as f64 / staged.max(1) as f64;
            total_cold += cold;
            total_staged += staged;
            println!(
                "staged/{kernel}/{cname:<10} cold {cold:>10} ns  staged {staged:>10} ns  \
                 ({speedup:.2}x, farkas {}/{} hit, bb nodes {} -> {}, {} fractional stages)",
                stats.farkas_hits,
                stats.farkas_hits + stats.farkas_misses,
                cold_stats.ilp.nodes,
                stats.ilp.nodes,
                stats.fractional_stages(),
            );
            rows.push(object([
                ("kernel", Json::Str(kernel.to_string())),
                ("config", Json::Str(cname.to_string())),
                ("cold_ns", int(cold as i64)),
                ("staged_ns", int(staged as i64)),
                ("speedup", ratio(speedup)),
                ("farkas_hits", int(stats.farkas_hits as i64)),
                ("farkas_misses", int(stats.farkas_misses as i64)),
                ("bb_nodes_cold", int(cold_stats.ilp.nodes as i64)),
                ("bb_nodes_staged", int(stats.ilp.nodes as i64)),
                ("lp_stages", int(stats.ilp.lp_stages as i64)),
                ("fractional_stages", int(stats.fractional_stages() as i64)),
            ]));
        }
    }
    let total_speedup = total_cold as f64 / total_staged.max(1) as f64;
    let out = report::default_path();
    report::update_section(
        &out,
        "staged",
        object([
            ("entries", Json::Array(rows)),
            ("total_cold_ns", int(total_cold as i64)),
            ("total_staged_ns", int(total_staged as i64)),
            ("total_speedup", ratio(total_speedup)),
        ]),
    );
    println!(
        "total: cold {total_cold} ns, staged {total_staged} ns ({total_speedup:.2}x) -> {out}"
    );
}
