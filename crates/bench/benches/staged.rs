//! Cold-vs-staged pipeline benchmark.
//!
//! Schedules every reference kernel twice per configuration:
//!
//! * **cold** — Farkas cache and warm-started solver disabled (every
//!   dimension re-eliminates every dependence and solves each
//!   lexicographic objective by full branch and bound from a rebuilt
//!   tableau);
//! * **staged** — the default pipeline: cached Farkas replay plus the
//!   incremental warm-started lexmin.
//!
//! Wall times land in `BENCH_schedule.json` (set `BENCH_OUT` to move
//! it); `BENCH_TARGET_MS` bounds the per-measurement budget, which the
//! CI smoke run sets low.

use std::fmt::Write as _;

use polytops_bench::bench_ns;
use polytops_core::{presets, schedule_with_options, EngineOptions};

fn main() {
    let cold_options = EngineOptions {
        farkas_cache: false,
        warm_start: false,
    };
    let configs = [
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
    ];
    let mut rows = Vec::new();
    let (mut total_cold, mut total_staged) = (0u128, 0u128);
    for (kernel, scop) in polytops_workloads::all_kernels() {
        for (cname, cfg) in &configs {
            let cold = bench_ns(|| {
                schedule_with_options(&scop, cfg, &cold_options).expect("kernel schedules")
            });
            let staged = bench_ns(|| {
                schedule_with_options(&scop, cfg, &EngineOptions::default())
                    .expect("kernel schedules")
            });
            let (_, stats) = schedule_with_options(&scop, cfg, &EngineOptions::default()).unwrap();
            let (_, cold_stats) = schedule_with_options(&scop, cfg, &cold_options).unwrap();
            let speedup = cold as f64 / staged.max(1) as f64;
            total_cold += cold;
            total_staged += staged;
            println!(
                "staged/{kernel}/{cname:<10} cold {cold:>10} ns  staged {staged:>10} ns  \
                 ({speedup:.2}x, farkas {}/{} hit, bb nodes {} -> {})",
                stats.farkas_hits,
                stats.farkas_hits + stats.farkas_misses,
                cold_stats.ilp.nodes,
                stats.ilp.nodes,
            );
            rows.push(format!(
                "    {{\"kernel\": \"{kernel}\", \"config\": \"{cname}\", \
                 \"cold_ns\": {cold}, \"staged_ns\": {staged}, \
                 \"speedup\": {speedup:.3}, \
                 \"farkas_hits\": {}, \"farkas_misses\": {}, \
                 \"bb_nodes_cold\": {}, \"bb_nodes_staged\": {}, \
                 \"lp_stages\": {}}}",
                stats.farkas_hits,
                stats.farkas_misses,
                cold_stats.ilp.nodes,
                stats.ilp.nodes,
                stats.ilp.lp_stages,
            ));
        }
    }
    let mut json = String::from("{\n  \"bench\": \"schedule\",\n  \"entries\": [\n");
    json.push_str(&rows.join(",\n"));
    let _ = write!(
        json,
        "\n  ],\n  \"total_cold_ns\": {total_cold},\n  \"total_staged_ns\": {total_staged},\n  \
         \"total_speedup\": {:.3}\n}}\n",
        total_cold as f64 / total_staged.max(1) as f64
    );
    // Cargo runs benches with the package directory as CWD; default the
    // report to the workspace root where CI picks it up.
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schedule.json").to_string()
    });
    std::fs::write(&out, json).expect("write bench report");
    println!(
        "total: cold {total_cold} ns, staged {total_staged} ns ({:.2}x) -> {out}",
        total_cold as f64 / total_staged.max(1) as f64
    );
}
