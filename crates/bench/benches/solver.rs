//! Solver-speed benchmark: the three PR levers measured separately.
//!
//! * **dual_simplex** — the standard sweep under the incremental lexmin
//!   solver. After a stage optimum is pinned as an equality row, the
//!   tableau is re-optimized with dual-simplex pivots on the existing
//!   basis; the mini phase-1 (fresh artificial variable per stage) is
//!   only a fallback. The bench asserts the fallback never fires on the
//!   sweep (`phase1_passes == 0`) and reports how many dual pivots did
//!   the work.
//! * **warm_sharing** — the sweep with cross-scenario warm-start
//!   sharing enabled: scenarios of the same (SCoP, component, ILP
//!   layout) group seed each other's lexmin stages from published
//!   per-dimension optima, with the canonical tie-break keeping every
//!   schedule bit-identical at any thread count (asserted at 1/2/4
//!   threads before any number is reported). Reported against the
//!   non-sharing sweep: total branch-and-bound nodes and wall time.
//! * **fast_path** — the heuristic scheduler on a synthetic large SCoP
//!   ([`synthetic::long_chain`]) versus the pure-ILP cascade on the
//!   same SCoP. The emitted fast-path schedule is certified against the
//!   dependence oracle before timing; the bench asserts the ≥ 5×
//!   speedup the heuristic exists for.
//!
//! Results land in the `"solver"` section of `BENCH_schedule.json`.

use polytops_bench::bench_ns;
use polytops_bench::report::{self, int, object, ratio};
use polytops_core::scenario::ScenarioResult;
use polytops_core::{presets, schedule};
use polytops_deps::{analyze, schedule_respects_dependence};
use polytops_workloads::sweep::standard_sweep;
use polytops_workloads::synthetic;

/// Statement count of the fast-path showcase chain: big enough that the
/// joint ILP visibly crawls, small enough that the pure-ILP baseline
/// still finishes in bench time.
const FAST_PATH_CHAIN: usize = 24;

fn total<F: Fn(&polytops_core::PipelineStats) -> usize>(results: &[ScenarioResult], f: F) -> usize {
    results.iter().flatten().map(|r| f(&r.stats)).sum()
}

fn main() {
    // ---- Lever 1: dual-simplex stage re-optimization -----------------
    let set = standard_sweep();
    let baseline = set.run_sequential();
    let dual_pivots = total(&baseline, |s| s.dual_pivots());
    let phase1_passes = total(&baseline, |s| s.phase1_passes());
    let fractional = total(&baseline, |s| s.fractional_stages());
    let baseline_nodes = total(&baseline, |s| s.ilp.nodes);
    assert_eq!(
        phase1_passes, 0,
        "dual simplex must re-optimize every pinned stage on the sweep \
         without falling back to the mini phase-1"
    );
    let baseline_ns = bench_ns(|| set.run_sequential());
    println!(
        "dual_simplex: {} dual pivots, {} phase-1 fallbacks, {} fractional stages",
        dual_pivots, phase1_passes, fractional
    );

    // ---- Lever 2: cross-scenario warm-start sharing ------------------
    let mut shared_set = standard_sweep();
    shared_set.share_warm_starts(true);
    let shared = shared_set.run_sequential();
    // Determinism gate: bit-identical schedules at every thread count.
    for threads in [1, 2, 4] {
        let sharded = shared_set.run_sharded(threads);
        for (a, b) in shared.iter().zip(&sharded) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.schedule, b.schedule,
                "{}: sharing must stay bit-identical at {threads} threads",
                a.name
            );
        }
    }
    let shared_nodes = total(&shared, |s| s.ilp.nodes);
    let seed_hits = total(&shared, |s| s.shared_seed_hits);
    assert!(seed_hits > 0, "the sweep must actually share seeds");
    assert!(
        shared_nodes < baseline_nodes,
        "sharing must reduce total branch-and-bound nodes \
         ({baseline_nodes} -> {shared_nodes})"
    );
    let shared_ns = bench_ns(|| shared_set.run_sequential());
    println!(
        "warm_sharing: {} seed hits; b&b nodes {} -> {} ({} threads checked)",
        seed_hits, baseline_nodes, shared_nodes, 4
    );

    // ---- Lever 3: heuristic fast path on a large SCoP ----------------
    let big = synthetic::long_chain(FAST_PATH_CHAIN);
    let fast = schedule(&big, &presets::fast_path()).expect("fast path schedules the chain");
    for dep in analyze(&big) {
        assert!(
            schedule_respects_dependence(
                &dep,
                fast.stmt(dep.src).rows(),
                fast.stmt(dep.dst).rows(),
            ),
            "fast-path schedule must be oracle-legal"
        );
    }
    let fast_ns = bench_ns(|| schedule(&big, &presets::fast_path()).unwrap());
    let ilp_ns = bench_ns(|| schedule(&big, &presets::pluto()).unwrap());
    let fast_speedup = ilp_ns as f64 / fast_ns.max(1) as f64;
    println!(
        "fast_path: long_chain({FAST_PATH_CHAIN}) ilp {ilp_ns} ns, \
         heuristic {fast_ns} ns ({fast_speedup:.1}x)"
    );
    assert!(
        fast_speedup >= 5.0,
        "the heuristic fast path must beat the pure-ILP cascade by >= 5x \
         on the large chain (got {fast_speedup:.2}x)"
    );

    let out = report::default_path();
    report::update_section(
        &out,
        "solver",
        object([
            (
                "dual_simplex",
                object([
                    ("dual_pivots", int(dual_pivots as i64)),
                    ("phase1_passes", int(phase1_passes as i64)),
                    ("fractional_stages", int(fractional as i64)),
                    ("sweep_ns", int(baseline_ns as i64)),
                ]),
            ),
            (
                "warm_sharing",
                object([
                    ("shared_seed_hits", int(seed_hits as i64)),
                    ("baseline_nodes", int(baseline_nodes as i64)),
                    ("shared_nodes", int(shared_nodes as i64)),
                    ("baseline_ns", int(baseline_ns as i64)),
                    ("shared_ns", int(shared_ns as i64)),
                    (
                        "node_ratio",
                        ratio(shared_nodes as f64 / (baseline_nodes as f64).max(1.0)),
                    ),
                ]),
            ),
            (
                "fast_path",
                object([
                    ("chain_statements", int(FAST_PATH_CHAIN as i64)),
                    ("ilp_ns", int(ilp_ns as i64)),
                    ("fast_ns", int(fast_ns as i64)),
                    ("speedup", ratio(fast_speedup)),
                ]),
            ),
        ]),
    );
    println!("-> {out}");
}
