//! Scenario-engine benchmark: the naive per-scenario loop against the
//! sharded scenario engine.
//!
//! Runs the standard sweep (`polytops_workloads::sweep::standard_sweep`,
//! 5 kernels × 4 presets = 20 scenarios) three ways:
//!
//! * **isolated** — the pre-scenario-engine sequential loop: every
//!   scenario is an independent `schedule_with_options` call with its
//!   own Farkas cache (nothing amortized, one core);
//! * **sequential** — the scenario engine on one worker: cross-scenario
//!   cache sharing, no parallelism (isolates the amortization win);
//! * **sharded** — the scenario engine on ≥ 2 worker threads pulling
//!   from the channel queue (amortization + parallelism).
//!
//! Schedules are asserted bit-identical between sequential and sharded
//! before any number is reported. Results land in the `"scenarios"`
//! section of `BENCH_schedule.json` (the `"staged"` section written by
//! the staged bench is preserved); `speedup_cache` isolates cache
//! amortization (machine-independent), `speedup_threads` isolates
//! thread scaling (1.0 on a single-core container, grows with cores),
//! and `speedup_total` is the product the reconfiguration loop actually
//! experiences.

use polytops_bench::bench_ns;
use polytops_bench::report::{self, int, object, ratio};
use polytops_core::json::Json;
use polytops_core::scenario::ScenarioResult;
use polytops_workloads::sweep::standard_sweep;

fn main() {
    let set = standard_sweep();
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8));

    // Correctness gate: sharded results must be bit-identical to the
    // sequential engine before timing means anything.
    let sequential_results = set.run_sequential();
    let sharded_results = set.run_sharded(threads);
    for (a, b) in sequential_results.iter().zip(&sharded_results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.schedule, b.schedule, "{}: sharded must match", a.name);
    }

    let isolated_ns = bench_ns(|| set.run_isolated());
    let sequential_ns = bench_ns(|| set.run_sequential());
    let sharded_ns = bench_ns(|| set.run_sharded(threads));

    // Cache amortization: lookups the sweep answered from entries
    // eliminated by an *earlier scenario* — total sweep hits minus the
    // hits each scenario would score alone.
    let isolated_results = set.run_isolated();
    let hits = |results: &[ScenarioResult]| -> usize {
        results
            .iter()
            .flatten()
            .map(|r| r.stats.farkas_hits)
            .sum::<usize>()
    };
    let misses = |results: &[ScenarioResult]| -> usize {
        results
            .iter()
            .flatten()
            .map(|r| r.stats.farkas_misses)
            .sum::<usize>()
    };
    let sweep_hits = hits(&sequential_results);
    let cross_scenario_hits = sweep_hits.saturating_sub(hits(&isolated_results));
    assert!(
        cross_scenario_hits > 0,
        "the sweep must replay eliminations across scenarios"
    );

    let speedup_cache = isolated_ns as f64 / sequential_ns.max(1) as f64;
    let speedup_threads = sequential_ns as f64 / sharded_ns.max(1) as f64;
    let speedup_total = isolated_ns as f64 / sharded_ns.max(1) as f64;
    println!(
        "scenarios: {} over {} kernels on {threads} threads",
        set.len(),
        set.scops().len()
    );
    println!(
        "isolated {isolated_ns} ns, sequential(shared) {sequential_ns} ns, \
         sharded {sharded_ns} ns"
    );
    println!(
        "speedup: cache {speedup_cache:.2}x, threads {speedup_threads:.2}x, \
         total {speedup_total:.2}x; cross-scenario farkas hits {cross_scenario_hits} \
         (sweep {}/{} hit)",
        sweep_hits,
        sweep_hits + misses(&sequential_results),
    );

    let entries: Vec<Json> = sequential_results
        .iter()
        .flatten()
        .map(|r| {
            object([
                ("scenario", Json::Str(r.name.clone())),
                ("kernel", Json::Str(r.scop_name.clone())),
                ("dims", int(r.schedule.dims() as i64)),
                ("farkas_hits", int(r.stats.farkas_hits as i64)),
                ("farkas_misses", int(r.stats.farkas_misses as i64)),
                ("fractional_stages", int(r.stats.fractional_stages() as i64)),
            ])
        })
        .collect();
    let out = report::default_path();
    report::update_section(
        &out,
        "scenarios",
        object([
            ("kernels", int(set.scops().len() as i64)),
            ("scenario_count", int(set.len() as i64)),
            ("threads", int(threads as i64)),
            ("isolated_ns", int(isolated_ns as i64)),
            ("sequential_ns", int(sequential_ns as i64)),
            ("sharded_ns", int(sharded_ns as i64)),
            ("speedup_cache", ratio(speedup_cache)),
            ("speedup_threads", ratio(speedup_threads)),
            ("speedup_total", ratio(speedup_total)),
            (
                "cross_scenario_farkas_hits",
                int(cross_scenario_hits as i64),
            ),
            ("sweep_farkas_hits", int(sweep_hits as i64)),
            (
                "sweep_farkas_misses",
                int(misses(&sequential_results) as i64),
            ),
            ("entries", Json::Array(entries)),
        ]),
    );
    println!("-> {out}");
}
