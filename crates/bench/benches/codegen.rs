//! Codegen benchmark: structural quality of the schedule-tree backend
//! over the full kernel × preset sweep.
//!
//! For every scenario this bench generates the AST through
//! [`polytops_codegen::generate`], counts loops, residual guards and the
//! maximum loop depth, and compares the loop count against the
//! flat-schedule Fourier–Motzkin scanner the tree backend replaced
//! (captured at the last commit that carried it). Two contracts are
//! **asserted** before any number is reported:
//!
//! 1. the tree backend never emits more loops than the old separation
//!    did, and emits strictly fewer on at least one scenario (fused
//!    statements no longer split into sibling nests);
//! 2. per-scenario guard counts never regress against the committed
//!    baseline in `crates/bench/baselines/codegen_guards.json`
//!    (regenerate with `UPDATE_CODEGEN_BASELINE=1` after an intentional
//!    change and review the diff).
//!
//! Results land in the `"codegen"` section of `BENCH_schedule.json`
//! (other sections are preserved).

use std::time::Instant;

use polytops_bench::report::{self, int, object};
use polytops_codegen::{generate, stats};
use polytops_core::json::{self, Json};
use polytops_core::schedule;
use polytops_workloads::{all_kernels, sweep::preset_grid};

/// The presets that existed when the flat-schedule scanner was deleted;
/// later presets (e.g. `fast_path`) have no old loop count to compare
/// against.
const OLD_FM_PRESETS: [&str; 4] = ["pluto", "feautrier", "isl_like", "wavefront"];

/// Loop counts of the deleted flat-schedule scanner, per kernel over
/// [`OLD_FM_PRESETS`].
const OLD_FM_LOOPS: [(&str, [usize; 4]); 7] = [
    ("stencil_chain", [1, 1, 1, 2]),
    ("matmul", [3, 3, 3, 6]),
    ("producer_consumer", [1, 2, 1, 2]),
    ("reversed_consumer", [2, 2, 2, 4]),
    ("jacobi_1d", [2, 2, 2, 4]),
    ("heat_2d", [3, 3, 3, 6]),
    ("gemver", [3, 7, 7, 7]),
];

fn baseline_path() -> String {
    format!(
        "{}/baselines/codegen_guards.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn load_baseline(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    json::parse(&text).ok()
}

fn main() {
    let update = std::env::var_os("UPDATE_CODEGEN_BASELINE").is_some();
    let path = baseline_path();
    let baseline = load_baseline(&path);

    let mut entries: Vec<Json> = Vec::new();
    let mut new_baseline: Vec<(String, Json)> = Vec::new();
    let mut saved_total = 0usize;
    let mut strictly_fewer = 0usize;
    let mut total_ns: u128 = 0;
    for (kernel, scop) in all_kernels() {
        let old_row = OLD_FM_LOOPS
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, row)| row);
        for (preset, config) in preset_grid() {
            let name = format!("{kernel}/{preset}");
            let sched = schedule(&scop, &config).expect("sweep kernel schedules");
            let t0 = Instant::now();
            let ast = generate(&scop, &sched).expect("sweep kernel lowers");
            let generate_ns = t0.elapsed().as_nanos();
            total_ns += generate_ns;
            let s = stats(&ast);

            let old_loops = old_row.and_then(|row| {
                let pi = OLD_FM_PRESETS.iter().position(|p| *p == preset)?;
                Some(row[pi])
            });
            if let Some(old) = old_loops {
                assert!(
                    s.loops <= old,
                    "{name}: tree backend emits {} loops, old separation emitted {old}",
                    s.loops
                );
                saved_total += old - s.loops;
                if s.loops < old {
                    strictly_fewer += 1;
                }
            }
            if !update {
                if let Some(base) = baseline
                    .as_ref()
                    .and_then(Json::as_object)
                    .and_then(|o| o.get(name.as_str()))
                    .and_then(Json::as_int)
                {
                    assert!(
                        s.guards as i64 <= base,
                        "{name}: {} residual guards regress the committed baseline {base} \
                         (UPDATE_CODEGEN_BASELINE=1 regenerates after intentional changes)",
                        s.guards
                    );
                }
            }
            new_baseline.push((name.clone(), int(s.guards as i64)));

            println!(
                "{name:<30} loops {:>2} (old fm {})  guards {:>2}  depth {:>2}  ({:.2} ms)",
                s.loops,
                old_loops.map_or_else(|| "?".into(), |o| o.to_string()),
                s.guards,
                s.max_depth,
                generate_ns as f64 / 1e6,
            );
            entries.push(report::object([
                ("scenario", Json::Str(name)),
                ("loops", int(s.loops as i64)),
                ("guards", int(s.guards as i64)),
                ("max_depth", int(s.max_depth as i64)),
                (
                    "old_fm_loops",
                    old_loops.map_or(Json::Null, |o| int(o as i64)),
                ),
                ("generate_ns", int(generate_ns as i64)),
            ]));
        }
    }

    assert!(
        strictly_fewer > 0,
        "at least one scenario must emit strictly fewer loops than the old separation"
    );
    println!(
        "codegen: {strictly_fewer}/{} scenarios beat the old separation, {saved_total} \
         duplicated loops eliminated ({:.1} ms total generation)",
        entries.len(),
        total_ns as f64 / 1e6
    );

    if update {
        let obj = Json::Object(new_baseline.into_iter().collect());
        std::fs::write(&path, format!("{}\n", obj)).expect("write baseline");
        println!("-> {path} (baseline regenerated)");
    } else if baseline.is_none() {
        println!("note: no committed baseline at {path}; run with UPDATE_CODEGEN_BASELINE=1");
    }

    let out = report::default_path();
    report::update_section(
        &out,
        "codegen",
        object([
            ("scenarios", int(entries.len() as i64)),
            ("strictly_fewer_loops", int(strictly_fewer as i64)),
            ("duplicated_loops_eliminated", int(saved_total as i64)),
            ("generate_ns_total", int(total_ns as i64)),
            ("entries", Json::Array(entries)),
        ]),
    );
    println!("-> {out}");
}
