//! Service benchmark: the `polytopsd` daemon's two scale levers,
//! measured over real TCP connections.
//!
//! * **Warm registry vs cold connect** — the same single-scenario
//!   request (matmul × pluto: one config, so nothing amortizes *within*
//!   the request and the registry's cross-request saving is isolated)
//!   against a fresh daemon and against one whose registry already
//!   holds the SCoP. The warm request must be a registry hit with
//!   *zero* fresh Farkas eliminations (asserted from the response's
//!   stats field before any number is reported) — it pays only the ILP
//!   solves plus wire overhead.
//! * **Batched vs serial throughput** — N clients submitting the
//!   standard sweep concurrently (admitted into shared-`ScenarioSet`
//!   batches by the admission window) against one client submitting the
//!   same requests one at a time, waiting for each response.
//!
//! Results land in the `"service"` section of `BENCH_schedule.json`
//! (other sections are preserved).

use std::time::{Duration, Instant};

use polytops_bench::bench_ns;
use polytops_bench::report::{self, int, object, ratio};
use polytops_core::json::{self, Json};
use polytops_server::{Client, Server, ServerConfig};
use polytops_workloads::matmul;
use polytops_workloads::requests::{request_line, sweep_request_streams};

fn immediate_dispatch() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        window_ms: 0, // dispatch each request as its own batch
        ..ServerConfig::default()
    }
}

/// (registry hit, total farkas misses, results compact text).
fn unpack(response: &str) -> (bool, i64, String) {
    let parsed = json::parse(response).expect("response parses");
    let obj = parsed.as_object().expect("response object");
    assert_eq!(obj["ok"].as_bool(), Some(true), "daemon error: {response}");
    let hit = obj["registry"].as_object().unwrap()["hit"]
        .as_bool()
        .unwrap();
    let misses = obj["stats"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| {
            e.as_object().unwrap()["pipeline"].as_object().unwrap()["farkas_misses"]
                .as_int()
                .unwrap()
        })
        .sum();
    (hit, misses, obj["results"].compact())
}

fn main() {
    // ---- cold connect vs warm registry -----------------------------
    let line = request_line("bench", "matmul", &matmul(), &["pluto"]);

    // Cold: fresh daemon, first sight of the SCoP — pays the TCP
    // connect plus dependence analysis + every Farkas elimination. Min
    // of a few runs to tame one-shot noise.
    let mut cold_ns = u128::MAX;
    let mut cold_results = String::new();
    for _ in 0..3 {
        let handle = Server::start(immediate_dispatch()).expect("bind");
        let t0 = Instant::now();
        let mut client = Client::connect(handle.addr()).expect("connect");
        let response = client.roundtrip(&line).expect("cold request");
        cold_ns = cold_ns.min(t0.elapsed().as_nanos());
        let (hit, _, results) = unpack(&response);
        assert!(!hit, "cold request must be a registry miss");
        cold_results = results;
        handle.shutdown();
    }

    // Warm: one daemon kept alive, the SCoP resident; every request
    // (fresh connections included) replays the registry.
    let handle = Server::start(immediate_dispatch()).expect("bind");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    let (hit, _, first) = unpack(&client.roundtrip(&line).expect("seed request"));
    assert!(!hit);
    assert_eq!(first, cold_results, "daemon answers are deterministic");
    let warm_ns = bench_ns(|| {
        let response = client.roundtrip(&line).expect("warm request");
        let (hit, misses, results) = unpack(&response);
        assert!(hit, "warm request must be a registry hit");
        assert_eq!(misses, 0, "warm request must not re-run any elimination");
        assert_eq!(results, cold_results, "warm must be bit-identical to cold");
    });
    let registry = handle.registry_stats();
    assert!(registry.hits > 0, "{registry:?}");
    handle.shutdown();
    let warm_speedup = cold_ns as f64 / warm_ns.max(1) as f64;
    println!("service: cold {cold_ns} ns, warm {warm_ns} ns ({warm_speedup:.2}x warm speedup)");

    // ---- batched vs serial throughput ------------------------------
    let clients = 4usize;
    let streams = sweep_request_streams(clients);
    let requests: usize = streams.iter().map(Vec::len).sum();

    // Serial: one client, one request in flight at a time, immediate
    // dispatch (a window would only add idle waiting here). The results
    // are kept per stream position as the reference bytes the batched
    // run must reproduce.
    let (serial_ns, serial_results) = {
        let handle = Server::start(immediate_dispatch()).expect("bind");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let t0 = Instant::now();
        let results: Vec<Vec<String>> = streams
            .iter()
            .map(|stream| {
                stream
                    .iter()
                    .map(|line| unpack(&client.roundtrip(line).expect("serial request")).2)
                    .collect()
            })
            .collect();
        let ns = t0.elapsed().as_nanos();
        handle.shutdown();
        (ns, results)
    };

    // Batched: the same requests from N concurrent connections; the
    // admission window coalesces them into shared-ScenarioSet batches
    // (registry dedupe makes the N sweep copies one analysis each).
    // Every response must be byte-identical to its serial counterpart —
    // batching is an execution strategy, not a semantic one.
    let batched_ns = {
        let handle = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            window_ms: 10,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for (stream, expected) in streams.iter().zip(&serial_results) {
                s.spawn(move || {
                    let mut client =
                        Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                    for line in stream {
                        client.send_line(line).expect("send");
                    }
                    for want in expected {
                        let (_, _, got) = unpack(&client.recv_line().expect("recv"));
                        assert_eq!(&got, want, "batched must be bit-identical to serial");
                    }
                });
            }
        });
        let ns = t0.elapsed().as_nanos();
        handle.shutdown();
        ns
    };
    let batch_speedup = serial_ns as f64 / batched_ns.max(1) as f64;
    println!(
        "service: serial {serial_ns} ns, batched {batched_ns} ns for {requests} requests \
         from {clients} clients ({batch_speedup:.2}x batched speedup)"
    );

    let out = report::default_path();
    report::update_section(
        &out,
        "service",
        object([
            ("cold_ns", int(cold_ns as i64)),
            ("warm_ns", int(warm_ns as i64)),
            ("warm_speedup", ratio(warm_speedup)),
            ("clients", int(clients as i64)),
            ("requests", int(requests as i64)),
            ("serial_ns", int(serial_ns as i64)),
            ("batched_ns", int(batched_ns as i64)),
            ("batch_speedup", ratio(batch_speedup)),
            ("registry_hits", int(registry.hits as i64)),
            ("registry_misses", int(registry.misses as i64)),
            ("bit_identical", Json::Bool(true)),
        ]),
    );
    println!("-> {out}");
}
