//! Observability benchmark: what does instrumentation cost, and does it
//! ever perturb results?
//!
//! Runs the standard sweep through the sharded scenario engine twice —
//! untraced (no span context bound, every probe inert) and traced (a
//! live [`polytops_obs::Recorder`] collecting the full span tree plus
//! the simplex/Farkas timing histograms) — with the two variants
//! interleaved and min-of-N timed, so machine noise hits both equally.
//! Schedules are asserted bit-identical between the variants before any
//! number is reported, and the traced/untraced ratio is asserted within
//! the ≤ 5% overhead budget.
//!
//! One fully-traced sweep is also exported as Chrome trace-event JSON
//! (load it in `chrome://tracing` or Perfetto); the path is printed.
//! Results land in the `"observability"` section of
//! `BENCH_schedule.json` (other sections are preserved).

use std::time::Instant;

use polytops_bench::report::{self, int, object, ratio};
use polytops_core::scenario::ScenarioSet;
use polytops_core::EngineOptions;
use polytops_workloads::sweep::{preset_grid, SWEEP_CHAIN_LEN};
use polytops_workloads::{all_kernels, synthetic};

/// The standard sweep with every scenario's engine run linked under
/// `link` (`None` builds the plain untraced sweep).
fn sweep_with_trace(link: Option<polytops_obs::SpanLink>) -> ScenarioSet {
    let mut set = ScenarioSet::new();
    let mut kernels = all_kernels();
    kernels.push(("long_chain_12", synthetic::long_chain(SWEEP_CHAIN_LEN)));
    for (kernel, scop) in kernels {
        let id = set.add_scop(kernel, scop);
        for (preset, config) in preset_grid() {
            let options = EngineOptions {
                trace: link.clone(),
                ..EngineOptions::default()
            };
            set.add_scenario_with_options(id, format!("{kernel}/{preset}"), config, options);
        }
    }
    set
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8));
    let recorder = polytops_obs::Recorder::new(true);
    let root = recorder.root_span("bench_sweep");
    let untraced = sweep_with_trace(None);
    let traced = sweep_with_trace(root.link());

    // Correctness gate: instrumentation must never perturb results.
    let baseline = untraced.run_sharded(threads);
    let instrumented = traced.run_sharded(threads);
    for (a, b) in baseline.iter().zip(&instrumented) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            a.schedule, b.schedule,
            "{}: traced schedule must be bit-identical to untraced",
            a.name
        );
    }

    // Interleaved min-of-N: alternating the variants inside each round
    // exposes both to the same thermal/scheduler conditions.
    let rounds = 3usize;
    let mut untraced_ns = u128::MAX;
    let mut traced_ns = u128::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(untraced.run_sharded(threads));
        untraced_ns = untraced_ns.min(t0.elapsed().as_nanos());
        let t0 = Instant::now();
        std::hint::black_box(traced.run_sharded(threads));
        traced_ns = traced_ns.min(t0.elapsed().as_nanos());
    }
    let overhead = traced_ns as f64 / untraced_ns.max(1) as f64;
    println!(
        "observability: untraced {untraced_ns} ns, traced {traced_ns} ns \
         ({:.2}% overhead) on {threads} threads",
        (overhead - 1.0) * 100.0
    );
    assert!(
        overhead <= 1.05,
        "instrumentation overhead {:.2}% exceeds the 5% budget",
        (overhead - 1.0) * 100.0
    );

    // Export one fully-traced sweep as Chrome trace events under a
    // fresh trace id, so the file holds exactly one sweep's spans.
    let export_root = recorder.root_span("export_sweep");
    let trace_id = export_root.trace_id();
    let export = sweep_with_trace(export_root.link());
    std::hint::black_box(export.run_sharded(threads));
    export_root.finish();
    let spans = recorder.spans_for(trace_id);
    assert!(
        spans.iter().any(|s| s.name == "pipeline") && spans.iter().any(|s| s.name == "dimension"),
        "traced sweep must record pipeline spans"
    );
    let events: Vec<polytops_obs::ChromeEvent> = spans.iter().map(Into::into).collect();
    let chrome = polytops_obs::chrome_trace(&events);
    let out = std::env::var("BENCH_TRACE_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/observability_trace.json"
        )
        .to_string()
    });
    std::fs::write(&out, &chrome).expect("write Chrome trace");
    println!(
        "wrote {} spans ({} bytes) of Chrome trace to {out}",
        spans.len(),
        chrome.len()
    );

    let path = report::default_path();
    report::update_section(
        &path,
        "observability",
        object([
            ("threads", int(threads)),
            ("untraced_sweep_ns", int(untraced_ns as i64)),
            ("traced_sweep_ns", int(traced_ns as i64)),
            ("overhead_ratio", ratio(overhead)),
            ("spans_per_sweep", int(spans.len())),
            ("chrome_export_bytes", int(chrome.len())),
        ]),
    );
    println!("updated {path} (observability section)");
}
