//! Shared handling of the committed benchmark report
//! (`BENCH_schedule.json`).
//!
//! Several benches contribute to one report file: `staged` owns the
//! `"staged"` section (cold vs cached/warm pipeline), `scenarios` owns
//! the `"scenarios"` section (sequential loop vs sharded scenario
//! engine). Each bench parses the existing file with the in-tree JSON
//! parser ([`polytops_core::json`]), replaces only its own section and
//! writes the result back, so running one bench never discards the
//! other's numbers. See `docs/ARCHITECTURE.md` for the meaning of every
//! field.

use std::collections::BTreeMap;

use polytops_core::json::{self, Json};

/// The report path: `$BENCH_OUT` if set, else `BENCH_schedule.json` at
/// the workspace root (cargo runs benches with the package directory as
/// CWD, so the default is anchored to this crate's manifest).
pub fn default_path() -> String {
    std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schedule.json").to_string()
    })
}

/// Replaces `section` of the report at `path` with `value`, keeping
/// every other section intact (an unreadable or unparsable existing
/// file is treated as empty). Always (re)stamps `"bench": "schedule"`.
///
/// # Panics
///
/// Panics when the file cannot be written — a benchmark without its
/// report is a failed run.
pub fn update_section(path: &str, section: &str, value: Json) {
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| match v {
            Json::Object(map) => Some(map),
            _ => None,
        })
        .unwrap_or_default();
    root.insert("bench".to_string(), Json::Str("schedule".to_string()));
    root.insert(section.to_string(), value);
    let mut out = Json::Object(root).to_string();
    out.push('\n');
    std::fs::write(path, out).expect("write bench report");
}

/// Builds a JSON object from key/value pairs (keys sort on output).
pub fn object<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// An integer field.
///
/// # Panics
///
/// Panics if the value exceeds `i64` (no benchmark counter does).
pub fn int(v: impl TryInto<i64>) -> Json {
    Json::Int(v.try_into().ok().expect("counter fits i64"))
}

/// A fractional field (ratios, speedups), rounded to 3 decimals.
pub fn ratio(v: f64) -> Json {
    Json::Float((v * 1000.0).round() / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_merge_without_clobbering() {
        let dir = std::env::temp_dir().join("polytops_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_schedule.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        update_section(path, "staged", object([("total_speedup", ratio(1.25))]));
        update_section(path, "scenarios", object([("threads", int(4_i64))]));
        let root = json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        let obj = root.as_object().unwrap();
        assert_eq!(obj["bench"].as_str(), Some("schedule"));
        assert_eq!(
            obj["staged"].as_object().unwrap()["total_speedup"].as_f64(),
            Some(1.25)
        );
        assert_eq!(
            obj["scenarios"].as_object().unwrap()["threads"].as_int(),
            Some(4)
        );
        let _ = std::fs::remove_file(path);
    }
}
