//! Benchmark support for the PolyTOPS scheduling pipeline.
//!
//! The environment has no crates.io access, so the benches under
//! `benches/` are `harness = false` binaries built on the tiny
//! [`bench_fn`] timer here instead of criterion. Each bench runs a real
//! scheduling problem from [`polytops_workloads`] and reports
//! nanoseconds per iteration.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;

use std::time::Instant;

/// Target wall time per measurement in nanoseconds, overridable with the
/// `BENCH_TARGET_MS` environment variable (the CI smoke run uses a small
/// value).
fn target_ns() -> u128 {
    std::env::var("BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u128>().ok())
        .map_or(200_000_000, |ms| ms.max(1) * 1_000_000)
}

/// Times `f` and returns nanoseconds per iteration.
///
/// Runs a small warmup, then picks an iteration count targeting roughly
/// `target_ns` (200 ms, or `BENCH_TARGET_MS`) of wall time — at least 5
/// iterations — so quick and slow problems both report stable numbers.
pub fn bench_ns<R>(mut f: impl FnMut() -> R) -> u128 {
    // Warmup + calibration.
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = ((target_ns() / once) as u64).clamp(5, 10_000);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() / u128::from(iters)
}

/// Times `f` and prints `name ... <ns>/iter`.
pub fn bench_fn<R>(name: &str, f: impl FnMut() -> R) {
    let ns = bench_ns(f);
    println!("{name:<40} {ns:>12} ns/iter");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_fn_runs_the_closure() {
        let mut count = 0u64;
        bench_fn("noop", || count += 1);
        assert!(count >= 6); // warmup + at least 5 timed iterations
    }
}
