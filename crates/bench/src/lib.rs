//! Benchmark support for the PolyTOPS scheduling pipeline.
//!
//! The environment has no crates.io access, so the benches under
//! `benches/` are `harness = false` binaries built on the tiny
//! [`bench_fn`] timer here instead of criterion. Each bench runs a real
//! scheduling problem from [`polytops_workloads`] and reports
//! nanoseconds per iteration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

/// Times `f` and prints `name ... <ns>/iter (<iters> iters)`.
///
/// Runs a small warmup, then picks an iteration count targeting roughly
/// 0.2 s of wall time (at least 5 iterations) so quick and slow problems
/// both report stable numbers.
pub fn bench_fn<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warmup + calibration.
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = ((200_000_000 / once) as u64).clamp(5, 10_000);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed().as_nanos();
    println!(
        "{name:<40} {:>12} ns/iter ({iters} iters)",
        total / u128::from(iters)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_fn_runs_the_closure() {
        let mut count = 0u64;
        bench_fn("noop", || count += 1);
        assert!(count >= 6); // warmup + at least 5 timed iterations
    }
}
