//! placeholder
